//! Benchmarks for the packet simulator's event rate and the fluid solver —
//! the cost ceiling for every §VII experiment — plus the routing-dispatch
//! comparison backing the `RoutingScheme` redesign: concrete-type (static),
//! trait-object (dyn), and `BuiltScheme`-enum dispatch on the same run.

use criterion::{criterion_group, criterion_main, Criterion};
use fatpaths_core::ecmp::DistanceMatrix;
use fatpaths_core::fwd::RoutingTables;
use fatpaths_core::layers::{build_random_layers, LayerConfig};
use fatpaths_core::scheme::{MinimalScheme, RoutingScheme};
use fatpaths_net::topo::slimfly::slim_fly;
use fatpaths_sim::fluid::max_min_rates;
use fatpaths_sim::{LoadBalancing, Scenario, SchemeSpec, SimConfig, Simulator};
use fatpaths_workloads::arrivals::FlowSpec;
use std::hint::black_box;

fn adversarial_flows(n: u64, p: u64, nr: u64, size: u64) -> Vec<FlowSpec> {
    let offset = p * (nr / 2 + 1);
    (0..n)
        .map(|e| FlowSpec {
            src: e as u32,
            dst: ((e + offset) % n) as u32,
            size,
            start: 0,
        })
        .collect()
}

fn bench_packet_sim(c: &mut Criterion) {
    let t = slim_fly(7, 5).unwrap();
    let flows = adversarial_flows(
        t.num_endpoints() as u64,
        5,
        t.num_routers() as u64,
        256 * 1024,
    );
    let ls = build_random_layers(&t.graph, &LayerConfig::new(9, 0.6, 1));
    let rt = RoutingTables::build(&t.graph, &ls);
    let dm = DistanceMatrix::build(&t.graph);
    let ms = MinimalScheme::new(&t.graph, &dm);
    let mut g = c.benchmark_group("packet_sim_sf98_490flows");
    g.sample_size(10);
    g.bench_function("ndp_fatpaths", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(
                &t,
                &rt,
                SimConfig {
                    lb: LoadBalancing::FatPathsLayers,
                    ..SimConfig::default()
                },
            );
            sim.add_flows(&flows);
            black_box(sim.run())
        })
    });
    g.bench_function("ndp_ecmp", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(
                &t,
                &ms,
                SimConfig {
                    lb: LoadBalancing::EcmpFlow,
                    ..SimConfig::default()
                },
            );
            sim.add_flows(&flows);
            black_box(sim.run())
        })
    });
    g.bench_function("tcp_dctcp_fatpaths", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(
                &t,
                &rt,
                SimConfig {
                    transport: fatpaths_sim::Transport::tcp_default(
                        fatpaths_sim::TcpVariant::Dctcp,
                    ),
                    lb: LoadBalancing::FatPathsLayers,
                    ..SimConfig::default()
                },
            );
            sim.add_flows(&flows);
            black_box(sim.run())
        })
    });
    g.finish();
}

/// The same layered NDP run under the three dispatch mechanisms the
/// redesign offers. This quantifies the vtable cost of `dyn
/// RoutingScheme` on the per-packet hot path and what the `BuiltScheme`
/// enum shim buys back.
fn bench_dispatch(c: &mut Criterion) {
    let t = slim_fly(7, 5).unwrap();
    let flows = adversarial_flows(
        t.num_endpoints() as u64,
        5,
        t.num_routers() as u64,
        128 * 1024,
    );
    let ls = build_random_layers(&t.graph, &LayerConfig::new(9, 0.6, 1));
    let rt = RoutingTables::build(&t.graph, &ls);
    let cfg = SimConfig {
        lb: LoadBalancing::FatPathsLayers,
        seed: 1,
        ..SimConfig::default()
    };
    let mut g = c.benchmark_group("routing_dispatch_sf98");
    g.sample_size(10);
    g.bench_function("static_concrete_type", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&t, &rt, cfg);
            sim.add_flows(&flows);
            black_box(sim.run())
        })
    });
    g.bench_function("dyn_trait_object", |b| {
        b.iter(|| {
            let scheme: &dyn RoutingScheme = &rt;
            let mut sim: Simulator<'_> = Simulator::new(&t, scheme, cfg);
            sim.add_flows(&flows);
            black_box(sim.run())
        })
    });
    g.bench_function("builtscheme_enum", |b| {
        let sc = Scenario::on(&t)
            .scheme(SchemeSpec::LayeredRandom {
                n_layers: 9,
                rho: 0.6,
            })
            .workload(&flows)
            .seed(1);
        let built = sc.build_scheme();
        b.iter(|| black_box(sc.run_with(&built)))
    });
    g.finish();
}

fn bench_fluid(c: &mut Criterion) {
    // 10k flows over 20k links, 3 links per path.
    let paths: Vec<Vec<u32>> = (0..10_000u32)
        .map(|i| vec![i % 20_000, (i * 7 + 1) % 20_000, (i * 13 + 2) % 20_000])
        .collect();
    let mut g = c.benchmark_group("fluid");
    g.sample_size(10);
    g.bench_function("max_min_10k_flows", |b| {
        b.iter(|| black_box(max_min_rates(&paths, 20_000, 10.0)))
    });
    g.finish();
}

criterion_group!(benches, bench_packet_sim, bench_dispatch, bench_fluid);
criterion_main!(benches);
