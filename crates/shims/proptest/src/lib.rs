//! Offline shim for `proptest`: a miniature property-testing harness that
//! implements the macro/strategy surface this workspace uses — `proptest!`
//! with an optional `#![proptest_config(...)]` header, range/tuple/`Just`/
//! `vec` strategies, `prop_map` / `prop_filter` / `prop_flat_map`,
//! `any::<T>()`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Unlike the real crate there is no shrinking: a failing case panics with
//! the generated inputs left to the assertion message. Case generation is
//! deterministic per test (seeded from the test's module path and name).

/// Deterministic generator state handed to strategies.
pub struct TestRunner {
    state: u64,
}

impl TestRunner {
    /// Seeds the runner from a test identifier (stable across runs).
    pub fn new(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRunner { state: h }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Harness configuration (`cases` = accepted samples per property).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted samples.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. `generate` returns `None` when a filter rejected the
/// sample (the harness redraws).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value, or `None` on filter rejection.
    fn generate(&self, runner: &mut TestRunner) -> Option<Self::Value>;

    /// Keeps only values satisfying `pred`.
    fn prop_filter<F>(self, _reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, pred }
    }

    /// Maps generated values through `f`.
    fn prop_map<F, O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then a second strategy from it.
    fn prop_flat_map<F, S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, runner: &mut TestRunner) -> Option<S::Value> {
        let v = self.inner.generate(runner)?;
        (self.pred)(&v).then_some(v)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, runner: &mut TestRunner) -> Option<O> {
        self.inner.generate(runner).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, runner: &mut TestRunner) -> Option<S2::Value> {
        let v = self.inner.generate(runner)?;
        (self.f)(v).generate(runner)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _runner: &mut TestRunner) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> Option<$t> {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                Some(self.start + (runner.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, runner: &mut TestRunner) -> Option<f64> {
        assert!(self.start < self.end, "empty strategy range");
        Some(self.start + runner.next_f64() * (self.end - self.start))
    }
}

impl<A: Strategy> Strategy for (A,) {
    type Value = (A::Value,);
    fn generate(&self, runner: &mut TestRunner) -> Option<Self::Value> {
        Some((self.0.generate(runner)?,))
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, runner: &mut TestRunner) -> Option<Self::Value> {
        Some((self.0.generate(runner)?, self.1.generate(runner)?))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, runner: &mut TestRunner) -> Option<Self::Value> {
        Some((
            self.0.generate(runner)?,
            self.1.generate(runner)?,
            self.2.generate(runner)?,
        ))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, runner: &mut TestRunner) -> Option<Self::Value> {
        Some((
            self.0.generate(runner)?,
            self.1.generate(runner)?,
            self.2.generate(runner)?,
            self.3.generate(runner)?,
        ))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> bool {
        runner.next_u64() & 1 == 1
    }
}

impl Arbitrary for u32 {
    fn arbitrary(runner: &mut TestRunner) -> u32 {
        runner.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(runner: &mut TestRunner) -> u64 {
        runner.next_u64()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> Option<T> {
        Some(T::arbitrary(runner))
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod prop {
    //! Namespaced strategy constructors (`prop::collection::vec`).

    pub mod collection {
        //! Collection strategies.

        use crate::{Strategy, TestRunner};

        /// Strategy for `Vec<S::Value>` with length drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: std::ops::Range<usize>,
        }

        /// `vec(element, len_range)` — the proptest collection builder.
        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, runner: &mut TestRunner) -> Option<Vec<S::Value>> {
                let span = (self.len.end - self.len.start).max(1) as u64;
                let n = self.len.start + (runner.next_u64() % span) as usize;
                let mut out = Vec::with_capacity(n);
                for _ in 0..n {
                    // Retry element-level filter rejections locally a few
                    // times before rejecting the whole vector.
                    let mut ok = None;
                    for _ in 0..16 {
                        if let Some(v) = self.element.generate(runner) {
                            ok = Some(v);
                            break;
                        }
                    }
                    out.push(ok?);
                }
                Some(out)
            }
        }
    }
}

/// Runs one property: draws accepted samples until `cases` bodies ran.
/// The body returns `false` when a `prop_assume!` rejected the sample.
pub fn run_property<A, S, B>(name: &str, config: ProptestConfig, strategy: S, mut body: B)
where
    S: Strategy<Value = A>,
    B: FnMut(A) -> bool,
{
    let mut runner = TestRunner::new(name);
    let mut accepted = 0u32;
    let mut attempts = 0u64;
    while accepted < config.cases {
        attempts += 1;
        assert!(
            attempts < config.cases as u64 * 200 + 2000,
            "proptest shim: strategy for `{name}` rejected too many samples"
        );
        let Some(v) = strategy.generate(&mut runner) else {
            continue;
        };
        if body(v) {
            accepted += 1;
        }
    }
}

/// The `proptest!` macro: an optional `#![proptest_config(...)]` header
/// followed by `#[test]` functions whose arguments are `pattern in
/// strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(#[$meta:meta] fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            #[$meta]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_property(
                    concat!(module_path!(), "::", stringify!($name)),
                    config,
                    ($($strat,)*),
                    |($($pat,)*)| {
                        $body
                        true
                    },
                );
            }
        )*
    };
}

/// `prop_assert!` — plain `assert!` in the shim (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!` — plain `assert_eq!` in the shim.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `prop_assume!` — rejects the current sample without failing the test.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return false;
        }
    };
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, proptest, Any, Arbitrary, Just,
        ProptestConfig, Strategy, TestRunner,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
        }

        #[test]
        fn assume_rejects((a, b) in (0u32..10, 0u32..10)) {
            prop_assume!(a != b);
            prop_assert!(a != b);
        }

        #[test]
        fn vec_and_filter(v in prop::collection::vec((0u32..5, 0u32..5).prop_filter("ne", |(a, b)| a != b), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (a, b) in v {
                prop_assert!(a != b);
            }
        }

        #[test]
        fn flat_map_and_just((n, v) in (1usize..5).prop_flat_map(|n| (Just(n), prop::collection::vec(0u64..10, 1..4)))) {
            prop_assert!((1..5).contains(&n));
            prop_assert!(!v.is_empty());
        }
    }
}
