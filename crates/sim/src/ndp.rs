//! The "purified" receiver-driven transport (§III-C), derived from NDP
//! (Handley et al., SIGCOMM'17):
//!
//! * senders push the first window at line rate (no probing);
//! * congested router queues **trim payloads** — headers always arrive, so
//!   the receiver has complete congestion information;
//! * trimmed headers and retransmissions travel in **priority queues**;
//! * the receiver **pulls** further packets, paced at its access-link
//!   rate, and — the FatPaths addition — requests a **layer change** when
//!   trims reveal congestion on the current layer (§V-F), providing the
//!   flowlet-elasticity that implements LetFlow adaptivity.

use crate::config::Transport;
use crate::engine::{EvKind, PktKind, TimePs};
use crate::simulator::Simulator;
use fatpaths_core::fwd::fnv1a;
use fatpaths_core::scheme::RoutingScheme;

/// Fixed NDP sender retransmission timeout (a rare safety net: payload
/// trimming means losses are announced, not inferred).
const NDP_RTO: TimePs = 2_000_000_000; // 2 ms

impl<R: RoutingScheme + ?Sized> Simulator<'_, R> {
    pub(crate) fn ndp_start(&mut self, flow: u32, initial_window: u32) {
        let n = self.flows[flow as usize].num_pkts.min(initial_window);
        for _ in 0..n {
            let seq = self.flows[flow as usize].next_new;
            self.flows[flow as usize].next_new += 1;
            self.send_data(flow, seq, false);
        }
        self.ndp_arm_rto(flow);
    }

    pub(crate) fn ndp_on_arrive(&mut self, ep: u32, pid: u32) {
        let pkt = *self.packets.get(pid);
        self.packets.release(pid);
        let flow = pkt.flow;
        match pkt.kind {
            PktKind::Data => {
                debug_assert_eq!(ep, pkt.dst_ep);
                self.flows[flow as usize].rx_last_layer = pkt.layer;
                if pkt.trimmed {
                    // Header-only arrival: the payload was cut. Record the
                    // congestion, suggest a different layer, request a
                    // retransmission (NACK) and schedule a pull credit.
                    let nl = self.n_layers() as u64;
                    let f = &mut self.flows[flow as usize];
                    f.trims += 1;
                    if nl > 1 {
                        let pick = fnv1a(((flow as u64) << 24) ^ 0xBEEF ^ f.trims as u64) % nl;
                        f.rx_suggest = pick as u8;
                    }
                    let suggest = self.flows[flow as usize].rx_suggest;
                    self.send_control(flow, PktKind::Nack, pkt.seq, true, false, suggest);
                    self.ndp_queue_pull(flow);
                } else {
                    let newly = self.flows[flow as usize].mark_received(pkt.seq);
                    let done =
                        self.flows[flow as usize].rcv_count == self.flows[flow as usize].num_pkts;
                    if newly {
                        let suggest = self.flows[flow as usize].rx_suggest;
                        self.send_control(flow, PktKind::Ack, pkt.seq, true, false, suggest);
                    }
                    if done {
                        self.complete_flow(flow);
                    } else if newly {
                        self.ndp_queue_pull(flow);
                    }
                }
            }
            PktKind::Ack => {
                // Sender side: per-packet ack. Adopt the receiver's layer
                // suggestion and keep the safety timer fresh.
                self.reset_dead_rtos(flow);
                self.ndp_adopt_suggestion(flow, pkt.suggest_layer);
                let f = &mut self.flows[flow as usize];
                if pkt.seq >= f.cum_ack {
                    f.cum_ack = pkt.seq + 1;
                }
                self.ndp_arm_rto(flow);
            }
            PktKind::Nack => {
                self.reset_dead_rtos(flow);
                self.ndp_adopt_suggestion(flow, pkt.suggest_layer);
                let f = &mut self.flows[flow as usize];
                f.retx_count += 1;
                f.retxq.push_back(pkt.seq);
                self.ndp_arm_rto(flow);
            }
            PktKind::Pull => {
                self.reset_dead_rtos(flow);
                self.ndp_adopt_suggestion(flow, pkt.suggest_layer);
                self.ndp_send_next(flow);
                self.ndp_arm_rto(flow);
            }
        }
    }

    fn ndp_adopt_suggestion(&mut self, flow: u32, suggest: u8) {
        if suggest != 0xff {
            self.flows[flow as usize].layer = suggest;
        }
    }

    /// One pull credit = one packet: retransmissions first, then new data.
    fn ndp_send_next(&mut self, flow: u32) {
        let f = &mut self.flows[flow as usize];
        if let Some(seq) = f.retxq.pop_front() {
            self.send_data(flow, seq, true);
        } else if f.next_new < f.num_pkts {
            let seq = f.next_new;
            f.next_new += 1;
            self.send_data(flow, seq, false);
        }
    }

    /// Queues a pull credit toward the sender, paced at the receiver's
    /// access-link rate (one full-size packet interval per pull).
    fn ndp_queue_pull(&mut self, flow: u32) {
        let ep = self.flows[flow as usize].dst_ep;
        self.pullq[ep as usize].push_back(flow);
        let at = self.now.max(self.pull_ready[ep as usize]);
        if self.pullq[ep as usize].len() == 1 {
            self.events.push(at, EvKind::PullTick { ep });
        }
    }

    pub(crate) fn ndp_pull_tick(&mut self, ep: u32) {
        if self.now < self.pull_ready[ep as usize] {
            let at = self.pull_ready[ep as usize];
            self.events.push(at, EvKind::PullTick { ep });
            return;
        }
        let Some(flow) = self.pullq[ep as usize].pop_front() else {
            return;
        };
        let suggest = self.flows[flow as usize].rx_suggest;
        let f = &self.flows[flow as usize];
        if f.finished.is_none() && !f.aborted {
            self.send_control(flow, PktKind::Pull, 0, true, false, suggest);
        }
        // Pace: one pull per full-payload serialization interval.
        let payload = match self.cfg.transport {
            Transport::Ndp { mtu_payload, .. } => mtu_payload,
            Transport::Tcp { mss, .. } => mss,
        };
        let interval = self.cfg.ser_time(payload + crate::config::HDR_BYTES);
        self.pull_ready[ep as usize] = self.now + interval;
        if !self.pullq[ep as usize].is_empty() {
            self.events
                .push(self.pull_ready[ep as usize], EvKind::PullTick { ep });
        }
    }

    fn ndp_arm_rto(&mut self, flow: u32) {
        let f = &mut self.flows[flow as usize];
        if f.finished.is_some() || f.aborted {
            return;
        }
        f.rto_gen += 1;
        let gen = f.rto_gen;
        self.events
            .push(self.now + NDP_RTO, EvKind::RtoTimer { flow, gen });
    }

    /// Safety net: if the flow has stalled (all credits or announcements
    /// lost — rare under trimming, routine under link failures), re-pick
    /// the routing layer (§V-G fault tolerance: redirect to one of the
    /// preprovisioned alternate layers) and re-push every sent-but-
    /// unreceived sequence at line rate.
    ///
    /// The full re-push matters under link and router failures: a packet
    /// dropped on a *down port* is silent — unlike a trim, nothing
    /// announces it to the receiver, so the lost sequences sit in no
    /// retransmission queue and the timeout is their only recovery path.
    /// Resending one packet per 2 ms RTO would stretch a lost w-packet
    /// window to w timeouts; resending the window mirrors the line-rate
    /// first window of §III-C (receiver-side dedup makes spurious copies
    /// harmless).
    pub(crate) fn ndp_on_rto(&mut self, flow: u32, gen: u32) {
        let f = &self.flows[flow as usize];
        if f.finished.is_some() || f.aborted || gen != f.rto_gen || !f.started {
            return;
        }
        let nl = self.n_layers() as u64;
        if nl > 1 {
            let f = &mut self.flows[flow as usize];
            f.flowlet_ctr += 1;
            f.layer = (fnv1a(((flow as u64) << 26) ^ 0xFA11 ^ f.flowlet_ctr as u64) % nl) as u8;
        }
        let window = match self.cfg.transport {
            Transport::Ndp { initial_window, .. } => initial_window,
            _ => 8,
        };
        let f = &self.flows[flow as usize];
        let missing: Vec<u32> = (0..f.num_pkts)
            .filter(|&s| !f.has_received(s))
            .take(window as usize)
            .collect();
        self.flows[flow as usize].retx_count += missing.len() as u32;
        for seq in missing {
            self.send_data(flow, seq, true);
        }
        self.ndp_arm_rto(flow);
    }
}
