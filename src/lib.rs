//! # FatPaths
//!
//! A from-scratch Rust reproduction of **"FatPaths: Routing in
//! Supercomputers and Data Centers when Shortest Paths Fall Short"**
//! (Besta et al., ACM/IEEE Supercomputing 2020).
//!
//! FatPaths is a routing architecture for modern *low-diameter* topologies
//! (Slim Fly, Dragonfly, Jellyfish, Xpander, HyperX). Its insight: these
//! networks have almost no shortest-path diversity — usually exactly one
//! minimal path per router pair — but plenty of **"almost" minimal paths**
//! (one hop longer). FatPaths encodes that diversity in commodity
//! destination-based forwarding by splitting links into **layers**, routing
//! minimally *within* each layer, and balancing elastic **flowlets** across
//! layers, on top of an NDP-derived "purified" transport.
//!
//! ## The routing-scheme registry
//!
//! Every routing scheme — FatPaths layered routing *and* all the paper's
//! comparison baselines — implements the
//! [`RoutingScheme`](core::scheme::RoutingScheme) trait: per
//! `(layer, router, destination)` candidate output ports plus metadata.
//! The packet simulator is generic over the trait, so SPAIN, PAST,
//! k-shortest-paths, Valiant, ECMP-family, and layered routing all run
//! through the same event loop under identical transports and workloads
//! (the comparison §VII makes, now executable end to end). New schemes
//! plug in without touching the simulator.
//!
//! | Scheme | Adapter | Paths per pair |
//! |---|---|---|
//! | FatPaths layers | [`RoutingTables`](core::fwd::RoutingTables) | one per layer (non-minimal in sparse layers) |
//! | ECMP / spray / LetFlow | [`MinimalScheme`](core::scheme::MinimalScheme) | all minimal next hops |
//! | SPAIN | [`SpainScheme`](core::scheme::SpainScheme) | one per merged VLAN forest |
//! | PAST | [`PastScheme`](core::scheme::PastScheme) | exactly one (per-destination tree) |
//! | k shortest paths | [`KspScheme`](core::scheme::KspScheme) | one per path rank |
//! | Valiant (VLB) | [`ValiantScheme`](core::scheme::ValiantScheme) | one per intermediate |
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |---|---|
//! | [`net`] | graph model, topology generators, size classes, cost model, fault plans (seeded link-failure samplers + timed events) |
//! | [`diversity`] | path-diversity metrics: CDP, PI, TNL, collisions (§IV) |
//! | [`core`] | layered routing, forwarding tables, the [`RoutingScheme`](core::scheme::RoutingScheme) trait and every baseline adapter (§V–VI) |
//! | [`mcf`] | max-achievable-throughput solver, worst-case traffic (§VI) |
//! | [`workloads`] | traffic patterns, flow sizes, arrivals, mappings (§II-C) |
//! | [`fib`] | FIB compilation: per-switch prefix rules + ECMP groups, table budgets, and the [`CompiledScheme`](fib::CompiledScheme) adapter (§V-E) |
//! | [`sim`] | packet-level simulator (NDP + TCP/DCTCP), fluid model, and the [`Scenario`](sim::Scenario) builder (§VII) |
//! | [`telemetry`] | deterministic in-simulation telemetry: time-series probes, flow spans, NDJSON/CSV trace export, and the `fatpaths-trace` inspector |
//!
//! ## Quickstart
//!
//! Declare a scenario — topology, scheme, transport, workload, seed — and
//! run it:
//!
//! ```
//! use fatpaths::prelude::*;
//!
//! // A Slim Fly MMS(q=5) with 3 endpoints per router.
//! let topo = fatpaths::net::topo::slimfly::slim_fly(5, 3).unwrap();
//!
//! // An adversarial workload: all endpoints hit the same remote router.
//! let flows: Vec<FlowSpec> = (0..topo.num_endpoints() as u32 / 2)
//!     .map(|e| FlowSpec { src: e, dst: e + 75, size: 64 * 1024, start: 0 })
//!     .collect();
//!
//! // FatPaths layered routing over the purified transport.
//! let result = Scenario::on(&topo)
//!     .scheme(SchemeSpec::LayeredRandom { n_layers: 6, rho: 0.6 })
//!     .transport(Transport::ndp_default())
//!     .workload(&flows)
//!     .seed(1)
//!     .run();
//! assert_eq!(result.completion_rate(), 1.0);
//!
//! // Swap a single line to simulate any baseline instead:
//! let spain = Scenario::on(&topo)
//!     .scheme(SchemeSpec::Spain { k_paths: 3 })
//!     .workload(&flows)
//!     .seed(1)
//!     .run();
//! assert_eq!(spain.completion_rate(), 1.0);
//! ```
//!
//! For full control (custom schemes, MPTCP, link failures), construct the
//! [`Simulator`](sim::Simulator) directly with any
//! [`RoutingScheme`](core::scheme::RoutingScheme) implementation.

pub use fatpaths_core as core;
pub use fatpaths_diversity as diversity;
pub use fatpaths_fib as fib;
pub use fatpaths_mcf as mcf;
pub use fatpaths_net as net;
pub use fatpaths_sim as sim;
pub use fatpaths_telemetry as telemetry;
pub use fatpaths_workloads as workloads;

/// One-stop imports for the common workflow.
pub mod prelude {
    pub use fatpaths_core::ecmp::DistanceMatrix;
    pub use fatpaths_core::fwd::RoutingTables;
    pub use fatpaths_core::interference_min::{build_interference_min_layers, ImConfig};
    pub use fatpaths_core::layers::{build_random_layers, LayerConfig, LayerSet};
    pub use fatpaths_core::past::PastVariant;
    pub use fatpaths_core::scheme::{
        KspConfig, KspScheme, MinimalScheme, PastScheme, PortSet, RoutingScheme, SpainScheme,
        ValiantScheme,
    };
    pub use fatpaths_fib::{compile, CompileMode, CompiledScheme, TableBudget};
    pub use fatpaths_net::classes::{build, SizeClass};
    pub use fatpaths_net::fault::{FaultModel, FaultPlan, LinkEvent};
    pub use fatpaths_net::topo::{TopoKind, Topology};
    pub use fatpaths_sim::{
        BuiltScheme, LoadBalancing, Scenario, SchemeSpec, SimConfig, SimResult, Simulator,
        TcpVariant, TelemetryConfig, Trace, Transport,
    };
    pub use fatpaths_workloads::arrivals::FlowSpec;
    pub use fatpaths_workloads::patterns::Pattern;
    pub use fatpaths_workloads::sizes::FlowSizeDist;
}
