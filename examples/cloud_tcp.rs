//! Cloud/data-center scenario (§VII-C): full TCP stack (DCTCP) on a Slim
//! Fly under a permutation workload — comparing ECMP, LetFlow, and
//! FatPaths layered routing side by side.
//!
//! ```text
//! cargo run --release --example cloud_tcp
//! ```

use fatpaths::prelude::*;
use fatpaths::sim::metrics::{mean, percentile};
use fatpaths::workloads::poisson_flows;

fn main() {
    let topo = build(TopoKind::SlimFly, SizeClass::Small, 1);
    println!(
        "cloud cluster: {} ({} endpoints), DCTCP over 10G Ethernet",
        topo.name,
        topo.num_endpoints()
    );

    // Permutation workload, λ = 200 flows/s/endpoint, web-search sizes.
    let n = topo.num_endpoints() as u64;
    let mapping = fatpaths::workloads::random_mapping(n as u32, 4);
    let pairs = fatpaths::workloads::apply_mapping(&mapping, &Pattern::Permutation.flows(n, 2));
    let dist = FlowSizeDist::web_search();
    let flows = poisson_flows(&pairs, 200.0, 0.008, &dist, 5);
    println!(
        "workload: {} flows over 8 ms (mean size 1 MiB)\n",
        flows.len()
    );

    let report = |name: &str, result: SimResult| {
        let fcts = result.fcts(None);
        println!(
            "{:<22} mean FCT {:>7.3} ms   p99 {:>8.3} ms   drops {:>5}",
            name,
            mean(&fcts) * 1e3,
            percentile(&fcts, 99.0) * 1e3,
            result.drops
        );
    };

    let dctcp = Transport::tcp_default(TcpVariant::Dctcp);
    for (name, lb) in [
        ("ECMP (static)", LoadBalancing::EcmpFlow),
        ("LetFlow (flowlets)", LoadBalancing::LetFlow),
    ] {
        let result = Scenario::on(&topo)
            .scheme(SchemeSpec::Minimal)
            .lb(lb)
            .transport(dctcp)
            .workload(&flows)
            .seed(9)
            .run();
        report(name, result);
    }
    let result = Scenario::on(&topo)
        .scheme(SchemeSpec::LayeredRandom {
            n_layers: 4,
            rho: 0.6,
        })
        .transport(dctcp)
        .workload(&flows)
        .seed(9)
        .run();
    report("FatPaths (n=4, rho=.6)", result);

    println!(
        "\nECMP and LetFlow can only use SF's (usually unique) minimal paths;\n\
         FatPaths spreads flowlets over non-minimal layers (§V-F)."
    );
}
