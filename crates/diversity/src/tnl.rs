//! Total Network Load (TNL) — §IV-B3.
//!
//! A topology with `k'·Nr` directed link capacities and average path length
//! `d` can sustain at most `#flows ≤ k'·Nr / d` conflict-free flows: each
//! flow of length `l` "consumes" `l` links. TNL is therefore the maximum
//! supply of path diversity a topology offers, and explains why non-minimal
//! routing (larger effective `d`) trades throughput for tail latency
//! (§V-B1, Fig. 12).

use fatpaths_net::topo::Topology;

/// TNL upper bound `k'·Nr / d` with explicit average path length `d`
/// (which depends on the *routing*, not just the topology: Valiant doubles
/// it, minimal routing keeps `d ≤ D`).
pub fn total_network_load(topo: &Topology, avg_path_len: f64) -> f64 {
    assert!(avg_path_len > 0.0);
    let kprime = topo.network_radix() as f64;
    let nr = topo.num_routers() as f64;
    kprime * nr / avg_path_len
}

/// TNL under minimal routing: uses the topology's exact average shortest
/// path length (exact for ≤ `exact_limit` routers, else sampled).
pub fn tnl_minimal(topo: &Topology, exact_limit: usize) -> f64 {
    let (_, d) = if topo.num_routers() <= exact_limit {
        topo.graph.diameter_apl()
    } else {
        topo.graph.diameter_apl_sampled(128)
    };
    total_network_load(topo, d)
}

/// Ratio of demanded flows to TNL — values above 1.0 predict congestion
/// even under ideal routing.
pub fn load_ratio(topo: &Topology, num_flows: usize, avg_path_len: f64) -> f64 {
    num_flows as f64 / total_network_load(topo, avg_path_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fatpaths_net::topo::{complete::complete, slimfly::slim_fly};

    #[test]
    fn clique_tnl_is_all_links() {
        // d = 1 ⇒ TNL = k'·Nr = 2m (each link usable by one flow per
        // direction).
        let t = complete(10, 10);
        let tnl = tnl_minimal(&t, 1000);
        assert!((tnl - (10.0 * 11.0)).abs() < 1e-9);
    }

    #[test]
    fn longer_paths_reduce_tnl() {
        let t = slim_fly(7, 5).unwrap();
        let minimal = tnl_minimal(&t, 1000);
        let valiant = total_network_load(&t, 2.0 * 1.9); // Valiant ≈ doubles d
        assert!(valiant < minimal);
    }

    #[test]
    fn load_ratio_scales_linearly() {
        let t = slim_fly(5, 3).unwrap();
        let r1 = load_ratio(&t, 100, 2.0);
        let r2 = load_ratio(&t, 200, 2.0);
        assert!((r2 / r1 - 2.0).abs() < 1e-9);
    }
}
