//! Jellyfish topology — a uniform random `k'`-regular graph
//! (Singla et al., NSDI'12; "homogeneous" variant).
//!
//! The paper uses Jellyfish as the randomized control for every
//! deterministic topology: for each network `X`, an *equivalent Jellyfish*
//! `X-JF` with identical `Nr`, `k'`, and `p` (§II-B). We generate random
//! regular graphs by stub matching followed by degree-preserving 2-swaps
//! that remove self-loops, multi-edges, and finally stitch components
//! together, so the result is always simple, connected, and exactly
//! `k'`-regular.

use super::{LinkClass, TopoKind, Topology};
use rand::prelude::*;
use rand::rngs::StdRng;
use rustc_hash::FxHashSet;

/// Builds a Jellyfish instance: a connected random `kprime`-regular graph on
/// `nr` routers with `p` endpoints each. `nr * kprime` must be even and
/// `kprime < nr`. Deterministic in `seed`.
pub fn jellyfish(nr: usize, kprime: u32, p: u32, seed: u64) -> Topology {
    let graph_edges = random_regular_edges(nr, kprime as usize, seed);
    let edges: Vec<(u32, u32, LinkClass)> = graph_edges
        .into_iter()
        .map(|(u, v)| (u, v, LinkClass::Long))
        .collect();
    Topology::assemble(
        TopoKind::Jellyfish,
        format!("JF(Nr={nr},k'={kprime},p={p})"),
        nr,
        edges,
        Topology::uniform_concentration(nr, p),
        3, // typical diameter for the paper's configurations (§II-B)
    )
}

/// Builds the *equivalent Jellyfish* of another topology: identical router
/// count, network radix, and per-router concentration (§II-B).
pub fn equivalent_jellyfish(other: &Topology, seed: u64) -> Topology {
    let nr = other.num_routers();
    let kprime = other.network_radix() as u32;
    // Keep total endpoint count identical even for non-uniform topologies
    // (fat trees): spread endpoints uniformly, remainder on low ids.
    let n = other.num_endpoints();
    let base = (n / nr) as u32;
    let rem = n % nr;
    let mut conc = vec![base; nr];
    for c in conc.iter_mut().take(rem) {
        *c += 1;
    }
    let graph_edges = random_regular_edges(nr, kprime as usize, seed);
    let edges: Vec<(u32, u32, LinkClass)> = graph_edges
        .into_iter()
        .map(|(u, v)| (u, v, LinkClass::Long))
        .collect();
    let mut t = Topology::assemble(
        TopoKind::Jellyfish,
        format!("{}-JF", other.kind.label()),
        nr,
        edges,
        conc,
        3,
    );
    t.name = format!("{}-JF(Nr={nr},k'={kprime})", other.kind.label());
    t
}

/// Generates the edge set of a connected simple random `k`-regular graph.
pub fn random_regular_edges(n: usize, k: usize, seed: u64) -> Vec<(u32, u32)> {
    assert!(k < n, "degree {k} must be < n={n}");
    assert!((n * k).is_multiple_of(2), "n*k must be even");
    let mut rng = StdRng::seed_from_u64(seed);
    for attempt in 0..64 {
        if let Some(edges) = try_generate(n, k, &mut rng) {
            return edges;
        }
        // Extremely unlikely for the paper's parameter ranges; reseed and retry.
        rng = StdRng::seed_from_u64(
            seed.wrapping_add(0x9e37_79b9_7f4a_7c15)
                .wrapping_mul(attempt + 2),
        );
    }
    panic!("failed to generate random regular graph n={n} k={k}");
}

fn try_generate(n: usize, k: usize, rng: &mut StdRng) -> Option<Vec<(u32, u32)>> {
    // Stub matching.
    let mut stubs: Vec<u32> = (0..n as u32)
        .flat_map(|v| std::iter::repeat_n(v, k))
        .collect();
    stubs.shuffle(rng);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * k / 2);
    let mut set: FxHashSet<(u32, u32)> = FxHashSet::default();
    let key = |u: u32, v: u32| (u.min(v), u.max(v));
    let mut bad: Vec<usize> = Vec::new();
    for i in (0..stubs.len()).step_by(2) {
        let (u, v) = (stubs[i], stubs[i + 1]);
        if u == v || set.contains(&key(u, v)) {
            bad.push(edges.len());
            edges.push((u, v)); // placeholder, repaired below
        } else {
            set.insert(key(u, v));
            edges.push((u, v));
        }
    }
    // Repair bad pairs by 2-swaps with random good edges.
    let mut tries = 0usize;
    while let Some(&bi) = bad.last() {
        tries += 1;
        if tries > 200 * n * k {
            return None;
        }
        let (u, v) = edges[bi];
        let oi = rng.random_range(0..edges.len());
        if oi == bi || bad.contains(&oi) {
            continue;
        }
        let (x, y) = edges[oi];
        // Candidate replacement: (u,x) and (v,y).
        if u == x || v == y || set.contains(&key(u, x)) || set.contains(&key(v, y)) {
            continue;
        }
        set.remove(&key(x, y));
        set.insert(key(u, x));
        set.insert(key(v, y));
        edges[bi] = (u, x);
        edges[oi] = (v, y);
        bad.pop();
    }
    // Stitch components: swap an edge from the main component with one from
    // another component; this merges them while preserving degrees.
    let mut tries = 0usize;
    loop {
        let comp = components(n, &edges);
        let ncomp = *comp.iter().max().unwrap() + 1;
        if ncomp == 1 {
            break;
        }
        tries += 1;
        if tries > 50 * n {
            return None;
        }
        // Pick one edge in component 0 and one in a different component.
        let e0 = edges.iter().position(|&(u, _)| comp[u as usize] == 0)?;
        let e1 = edges.iter().position(|&(u, _)| comp[u as usize] != 0)?;
        let (u, v) = edges[e0];
        let (x, y) = edges[e1];
        if set.contains(&key(u, x)) || set.contains(&key(v, y)) {
            // Try the other pairing.
            if set.contains(&key(u, y)) || set.contains(&key(v, x)) {
                return None; // dense corner case; restart with a new seed
            }
            set.remove(&key(u, v));
            set.remove(&key(x, y));
            set.insert(key(u, y));
            set.insert(key(v, x));
            edges[e0] = (u, y);
            edges[e1] = (v, x);
        } else {
            set.remove(&key(u, v));
            set.remove(&key(x, y));
            set.insert(key(u, x));
            set.insert(key(v, y));
            edges[e0] = (u, x);
            edges[e1] = (v, y);
        }
    }
    Some(edges)
}

fn components(n: usize, edges: &[(u32, u32)]) -> Vec<u32> {
    // Union-find.
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for &(u, v) in edges {
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            parent[ru as usize] = rv;
        }
    }
    // Relabel roots densely, with router 0's component first.
    let root0 = find(&mut parent, 0);
    let mut labels = vec![u32::MAX; n];
    let mut next = 1u32;
    let mut out = vec![0u32; n];
    for v in 0..n as u32 {
        let r = find(&mut parent, v);
        let lbl = if r == root0 {
            0
        } else if labels[r as usize] != u32::MAX {
            labels[r as usize]
        } else {
            labels[r as usize] = next;
            next += 1;
            labels[r as usize]
        };
        out[v as usize] = lbl;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_simple_connected() {
        for (n, k, seed) in [(50usize, 5usize, 1u64), (100, 8, 2), (242, 17, 3)] {
            let t = jellyfish(n, k as u32, 4, seed);
            assert_eq!(t.num_routers(), n);
            assert!(t.graph.is_regular(), "n={n} k={k}");
            assert_eq!(t.network_radix(), k);
            assert!(t.graph.is_connected());
            assert_eq!(t.graph.m(), n * k / 2);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = random_regular_edges(60, 6, 42);
        let b = random_regular_edges(60, 6, 42);
        assert_eq!(a, b);
        let c = random_regular_edges(60, 6, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn equivalent_jf_matches_source() {
        let sf = crate::topo::slimfly::slim_fly(7, 5).unwrap();
        let jf = equivalent_jellyfish(&sf, 7);
        assert_eq!(jf.num_routers(), sf.num_routers());
        assert_eq!(jf.network_radix(), sf.network_radix());
        assert_eq!(jf.num_endpoints(), sf.num_endpoints());
        assert!(jf.graph.is_connected());
    }

    #[test]
    fn low_diameter_at_paper_scale() {
        // A JF matching SF(q=11) (Nr=242, k'=17) should have diameter <= 4.
        let t = jellyfish(242, 17, 8, 11);
        let (d, _) = t.graph.diameter_apl();
        assert!(d <= 4, "diameter {d}");
    }
}
