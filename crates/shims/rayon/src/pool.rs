//! The execution engine behind the shim's parallel iterators: a global
//! work-stealing thread pool built on `std::thread` plus shared atomic
//! chunk counters.
//!
//! # Design
//!
//! Every data-parallel operation ([`run_indexed`]) registers an *op
//! entry* — an atomic claim counter over `n` task indices — in a global
//! list. Pool workers and the submitting thread all *steal* indices from
//! any active op by bumping its counter, so nested parallel calls (a
//! sweep cell that itself builds routing tables in parallel) are served
//! by the same worker set without deadlock: a thread waiting for its own
//! op to finish helps execute whatever other ops are in flight.
//!
//! # Determinism
//!
//! Task results are addressed by index, never by completion order, so
//! every terminal operation in [`crate`] yields bit-identical output for
//! any thread count — the property the experiment parity suite pins.
//!
//! # Sizing
//!
//! The pool is sized, in priority order, by [`ensure_pool`] (first call
//! wins), the `FATPATHS_THREADS` / `RAYON_NUM_THREADS` environment
//! variables, then `std::thread::available_parallelism()`. Compiling
//! with the `single-thread` feature removes the pool entirely (every
//! operation runs inline, for debugging), and [`run_sequential`] does
//! the same per call site at runtime.
//!
//! # Panics
//!
//! A panicking task does not poison the pool or deadlock the submitter:
//! payloads are caught on the executing thread, the operation drains,
//! and the panic resumes on the submitting thread (lowest task index
//! wins when several tasks panic, keeping the propagated payload
//! deterministic).

use std::any::Any;
use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Once, OnceLock};
use std::time::Duration;

/// A caught panic payload tagged with the panicking task's index.
type PanicSlot = Mutex<Option<(usize, Box<dyn Any + Send + 'static>)>>;

/// One in-flight data-parallel operation: `n` tasks behind an atomic
/// claim counter. The `data`/`exec` pair is a type-erased pointer to the
/// submitting stack frame's task closure; it is only dereferenced for a
/// successfully claimed index, and the submitter does not return before
/// `done == n`, so the pointee outlives every dereference.
struct OpEntry {
    /// Next unclaimed task index (may overshoot `n` by one per thief).
    next: AtomicUsize,
    /// Total task count.
    n: usize,
    /// Completed task count (incremented after execution, panics included).
    done: AtomicUsize,
    /// Erased pointer to the submitter's `&dyn Fn(usize)` fat reference.
    data: *const (),
    /// Invokes the erased task closure with a claimed index.
    exec: unsafe fn(*const (), usize),
    /// First panic payload by lowest task index, if any task panicked.
    panic: PanicSlot,
}

// SAFETY: `data` is only dereferenced via `exec` under the claim/done
// protocol described above; everything else is `Sync` already.
unsafe impl Send for OpEntry {}
unsafe impl Sync for OpEntry {}

impl OpEntry {
    /// Claims and executes one task. Returns `false` when no tasks are
    /// left to claim (the op may still be executing on other threads).
    fn run_one(&self) -> bool {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        if i >= self.n {
            return false;
        }
        let result = panic::catch_unwind(AssertUnwindSafe(|| unsafe { (self.exec)(self.data, i) }));
        if let Err(payload) = result {
            let mut slot = self.panic.lock().unwrap();
            match &*slot {
                Some((j, _)) if *j <= i => {}
                _ => *slot = Some((i, payload)),
            }
        }
        self.done.fetch_add(1, Ordering::Release);
        true
    }

    /// True while unclaimed tasks remain.
    fn has_work(&self) -> bool {
        self.next.load(Ordering::Relaxed) < self.n
    }

    /// True once every task has finished executing.
    fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire) == self.n
    }
}

/// The global pool: a list of active ops and a worker wake-up channel.
struct Pool {
    /// Active (not yet completed) operations, oldest first.
    ops: Mutex<Vec<Arc<OpEntry>>>,
    /// Wakes workers when ops arrive and submitters when ops complete.
    cv: Condvar,
    /// Total executing threads (workers + the submitting thread).
    threads: usize,
    /// Lazily spawns the worker threads on first parallel call.
    started: Once,
}

static POOL: OnceLock<Pool> = OnceLock::new();

/// Thread count requested by the environment, if any.
fn env_threads() -> Option<usize> {
    for key in ["FATPATHS_THREADS", "RAYON_NUM_THREADS"] {
        if let Ok(v) = std::env::var(key) {
            if let Ok(n) = v.trim().parse::<usize>() {
                return Some(n.max(1));
            }
        }
    }
    None
}

/// Pool size used when nothing was configured explicitly.
fn default_threads() -> usize {
    env_threads().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Initializes the global pool with `threads` executing threads if it
/// was not initialized yet, and returns the pool's actual size. The
/// first initialization (explicit or implicit) wins; later calls are
/// lookups. Benchmarks and parity tests use this to pin a size before
/// any parallel work runs.
pub fn ensure_pool(threads: usize) -> usize {
    POOL.get_or_init(|| Pool::new(threads.max(1))).threads
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool::new(default_threads()))
}

/// Number of threads parallel operations may use (1 under the
/// `single-thread` feature). Does not spawn workers.
pub fn current_num_threads() -> usize {
    if cfg!(feature = "single-thread") {
        return 1;
    }
    POOL.get()
        .map(|p| p.threads)
        .unwrap_or_else(default_threads)
}

impl Pool {
    fn new(threads: usize) -> Pool {
        Pool {
            ops: Mutex::new(Vec::new()),
            cv: Condvar::new(),
            threads,
            started: Once::new(),
        }
    }

    /// Spawns the `threads - 1` worker threads exactly once.
    fn start_workers(&'static self) {
        self.started.call_once(|| {
            for i in 1..self.threads {
                std::thread::Builder::new()
                    .name(format!("fatpaths-worker-{i}"))
                    .spawn(move || self.worker_loop())
                    .expect("failed to spawn pool worker");
            }
        });
    }

    /// Worker body: steal from the oldest op with unclaimed work, else
    /// park. Workers are daemon threads; process exit reaps them.
    fn worker_loop(&self) {
        loop {
            let op = {
                let mut ops = self.ops.lock().unwrap();
                loop {
                    if let Some(op) = ops.iter().find(|e| e.has_work()).cloned() {
                        break op;
                    }
                    ops = self
                        .cv
                        .wait_timeout(ops, Duration::from_millis(100))
                        .unwrap()
                        .0;
                }
            };
            while op.run_one() {}
            // The drained op may have been this thread's last piece of a
            // submitter's wait condition — wake it to re-check.
            self.cv.notify_all();
        }
    }

    /// Any active op with unclaimed work, for help-while-waiting.
    fn find_work(&self) -> Option<Arc<OpEntry>> {
        self.ops
            .lock()
            .unwrap()
            .iter()
            .find(|e| e.has_work())
            .cloned()
    }
}

thread_local! {
    /// Depth of [`run_sequential`] scopes on this thread.
    static SEQ_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// True when parallel execution is disabled for the current call site.
fn sequential_mode() -> bool {
    cfg!(feature = "single-thread") || SEQ_DEPTH.with(|d| d.get()) > 0
}

/// Runs `f` with all parallel operations on this thread executing
/// inline, sequentially and in index order — the runtime counterpart of
/// the `single-thread` feature, scoped to one closure. Nested calls
/// stack. Used by parity tests and the bench harness to compare
/// single-threaded and pooled execution within one process.
pub fn run_sequential<R>(f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            SEQ_DEPTH.with(|d| d.set(d.get() - 1));
        }
    }
    SEQ_DEPTH.with(|d| d.set(d.get() + 1));
    let _guard = Guard;
    f()
}

/// Executes `task(0..n)` to completion, in parallel when the pool has
/// more than one thread. Panics from tasks propagate to the caller
/// (lowest index wins); the operation always drains before returning.
pub(crate) fn run_indexed(n: usize, task: &(dyn Fn(usize) + Sync)) {
    if n == 0 {
        return;
    }
    if n == 1 || sequential_mode() {
        for i in 0..n {
            task(i);
        }
        return;
    }
    let pool = pool();
    if pool.threads <= 1 {
        for i in 0..n {
            task(i);
        }
        return;
    }
    pool.start_workers();

    /// Re-fattens the erased pointer and calls the task.
    unsafe fn call(data: *const (), i: usize) {
        let task: &&(dyn Fn(usize) + Sync) = unsafe { &*(data as *const &(dyn Fn(usize) + Sync)) };
        task(i);
    }

    // The fat reference lives on this stack frame until the op drains.
    let task_ref: &(dyn Fn(usize) + Sync) = task;
    let entry = Arc::new(OpEntry {
        next: AtomicUsize::new(0),
        n,
        done: AtomicUsize::new(0),
        data: (&raw const task_ref).cast(),
        exec: call,
        panic: Mutex::new(None),
    });
    pool.ops.lock().unwrap().push(entry.clone());
    pool.cv.notify_all();

    // Submitter participates in its own op first …
    while entry.run_one() {}
    // … then helps other in-flight ops (nested or sibling) until every
    // one of its own claimed-elsewhere tasks has finished.
    while !entry.is_done() {
        if let Some(other) = pool.find_work() {
            while other.run_one() {}
            pool.cv.notify_all();
        } else {
            let ops = pool.ops.lock().unwrap();
            if !entry.is_done() {
                // Timeout backstops a missed notify; cheap at this rate.
                drop(
                    pool.cv
                        .wait_timeout(ops, Duration::from_micros(200))
                        .unwrap(),
                );
            }
        }
    }
    pool.ops.lock().unwrap().retain(|e| !Arc::ptr_eq(e, &entry));

    let poisoned = entry.panic.lock().unwrap().take();
    if let Some((_, payload)) = poisoned {
        panic::resume_unwind(payload);
    }
}

/// Splits `n_items` into contiguous chunks (about 4 per thread, for
/// stealing-friendly load balance) and runs `body(lo, hi)` over them in
/// parallel. Chunk boundaries never affect results — outputs are
/// addressed by item index — so thread count cannot change output.
pub(crate) fn run_chunked(n_items: usize, body: &(dyn Fn(usize, usize) + Sync)) {
    if n_items == 0 {
        return;
    }
    let threads = if sequential_mode() {
        1
    } else {
        current_num_threads()
    };
    if threads <= 1 {
        run_indexed(1, &|_| body(0, n_items));
        return;
    }
    let chunk = n_items.div_ceil(threads * 4).max(1);
    let n_chunks = n_items.div_ceil(chunk);
    run_indexed(n_chunks, &|c| {
        let lo = c * chunk;
        let hi = (lo + chunk).min(n_items);
        body(lo, hi);
    });
}

/// Runs `a` and `b`, potentially in parallel, returning both results.
/// Mirrors `rayon::join`, including panic propagation (`a`'s panic wins
/// when both panic).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let fa = Mutex::new(Some(a));
    let fb = Mutex::new(Some(b));
    let ra: Mutex<Option<RA>> = Mutex::new(None);
    let rb: Mutex<Option<RB>> = Mutex::new(None);
    run_indexed(2, &|i| {
        if i == 0 {
            let f = fa.lock().unwrap().take().unwrap();
            *ra.lock().unwrap() = Some(f());
        } else {
            let f = fb.lock().unwrap().take().unwrap();
            *rb.lock().unwrap() = Some(f());
        }
    });
    (
        ra.into_inner().unwrap().unwrap(),
        rb.into_inner().unwrap().unwrap(),
    )
}

/// A job queued on a [`Scope`].
type ScopedJob<'scope> = Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope>;

/// A spawn scope handed to the closure of [`scope`]. Spawned jobs may
/// borrow from the enclosing stack frame (`'scope`) and may spawn
/// further jobs; all of them complete before `scope` returns.
pub struct Scope<'scope> {
    jobs: Mutex<Vec<ScopedJob<'scope>>>,
}

impl<'scope> Scope<'scope> {
    /// Queues `body` for execution before the scope ends.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.jobs.lock().unwrap().push(Box::new(body));
    }
}

/// Structured task parallelism mirroring `rayon::scope`: runs `f`, then
/// executes everything it [`Scope::spawn`]ed (in parallel, including
/// recursively spawned jobs) before returning `f`'s result.
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    let s = Scope {
        jobs: Mutex::new(Vec::new()),
    };
    let result = f(&s);
    loop {
        let batch = std::mem::take(&mut *s.jobs.lock().unwrap());
        if batch.is_empty() {
            break;
        }
        let batch: Vec<Mutex<Option<ScopedJob<'scope>>>> =
            batch.into_iter().map(|j| Mutex::new(Some(j))).collect();
        run_indexed(batch.len(), &|i| {
            let job = batch[i].lock().unwrap().take().unwrap();
            job(&s);
        });
    }
    result
}
