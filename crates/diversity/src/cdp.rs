//! Count of Disjoint Paths (CDP) — §IV-B1.
//!
//! `c_l(A, B)` is the smallest number of edges whose removal kills every
//! path of length ≤ `l` from set `A` to set `B`. Exact length-bounded
//! min-cut is NP-hard for general `l`, so — exactly like the paper — we use
//! a Ford–Fulkerson-style greedy: repeatedly find a shortest surviving
//! `A→B` path of length ≤ `l` and delete its edges. The number of deleted
//! paths is a set of edge-disjoint bounded-length paths, i.e. the usable
//! multipath supply. For `l = ∞` the exact max-flow (Menger) value is also
//! provided for validation.

use fatpaths_net::graph::{Graph, RouterId};

/// Maps each CSR direction slot to its undirected edge id, so edge removal
/// can be tracked with a flat bitmap.
#[derive(Clone, Debug)]
pub struct EdgeIds {
    per_dir: Vec<u32>,
    offsets: Vec<u32>,
    m: usize,
}

impl EdgeIds {
    /// Builds the direction→edge-id map for `g` (edge ids follow
    /// [`Graph::edges`] canonical order).
    pub fn new(g: &Graph) -> Self {
        let n = g.n();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        for u in 0..n as u32 {
            offsets.push(offsets[u as usize] + g.degree(u) as u32);
        }
        let mut per_dir = vec![u32::MAX; g.total_ports()];
        for (id, (u, v)) in g.edges().enumerate() {
            let pu = g.port_of(u, v).unwrap();
            let pv = g.port_of(v, u).unwrap();
            per_dir[(offsets[u as usize] + pu) as usize] = id as u32;
            per_dir[(offsets[v as usize] + pv) as usize] = id as u32;
        }
        EdgeIds {
            per_dir,
            offsets,
            m: g.m(),
        }
    }

    /// Edge id of `u`'s `port`-th link.
    #[inline]
    pub fn edge_id(&self, u: RouterId, port: u32) -> u32 {
        self.per_dir[(self.offsets[u as usize] + port) as usize]
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }
}

/// Reusable scratch buffers for masked BFS.
#[derive(Default)]
pub struct CdpScratch {
    dist: Vec<u32>,
    parent: Vec<(u32, u32)>, // (prev node, edge id)
    queue: Vec<u32>,
    removed: Vec<bool>,
    is_target: Vec<bool>,
}

/// Greedy count of edge-disjoint paths of length ≤ `max_len` from any
/// router in `a` to any router in `b` (the paper's `c_l(A,B)`).
///
/// `a` and `b` must be disjoint and non-empty.
pub fn cdp(g: &Graph, eids: &EdgeIds, a: &[RouterId], b: &[RouterId], max_len: u32) -> u32 {
    let mut scratch = CdpScratch::default();
    cdp_with(g, eids, a, b, max_len, &mut scratch)
}

/// [`cdp`] with caller-provided scratch space (for hot sampling loops).
pub fn cdp_with(
    g: &Graph,
    eids: &EdgeIds,
    a: &[RouterId],
    b: &[RouterId],
    max_len: u32,
    scratch: &mut CdpScratch,
) -> u32 {
    debug_assert!(!a.is_empty() && !b.is_empty());
    debug_assert!(a.iter().all(|x| !b.contains(x)), "A and B must be disjoint");
    let n = g.n();
    scratch.removed.clear();
    scratch.removed.resize(eids.m(), false);
    scratch.is_target.clear();
    scratch.is_target.resize(n, false);
    for &t in b {
        scratch.is_target[t as usize] = true;
    }
    let mut count = 0u32;
    while let Some(path_edges) = shortest_surviving_path(g, eids, a, max_len, scratch) {
        for e in path_edges {
            scratch.removed[e as usize] = true;
        }
        count += 1;
    }
    for &t in b {
        scratch.is_target[t as usize] = false;
    }
    count
}

/// BFS over surviving edges from multi-source `a`; returns the edge ids of
/// one shortest path to any marked target within `max_len`, or `None`.
fn shortest_surviving_path(
    g: &Graph,
    eids: &EdgeIds,
    a: &[RouterId],
    max_len: u32,
    s: &mut CdpScratch,
) -> Option<Vec<u32>> {
    let n = g.n();
    s.dist.clear();
    s.dist.resize(n, u32::MAX);
    s.parent.clear();
    s.parent.resize(n, (u32::MAX, u32::MAX));
    s.queue.clear();
    for &src in a {
        s.dist[src as usize] = 0;
        s.queue.push(src);
    }
    let mut head = 0;
    while head < s.queue.len() {
        let u = s.queue[head];
        head += 1;
        let du = s.dist[u as usize];
        if du >= max_len {
            continue;
        }
        for (port, &v) in g.neighbors(u).iter().enumerate() {
            let e = eids.edge_id(u, port as u32);
            if s.removed[e as usize] || s.dist[v as usize] != u32::MAX {
                continue;
            }
            s.dist[v as usize] = du + 1;
            s.parent[v as usize] = (u, e);
            if s.is_target[v as usize] {
                // Reconstruct edge ids back to a source.
                let mut path = Vec::with_capacity((du + 1) as usize);
                let mut cur = v;
                while s.parent[cur as usize].0 != u32::MAX {
                    let (prev, e) = s.parent[cur as usize];
                    path.push(e);
                    cur = prev;
                }
                return Some(path);
            }
            s.queue.push(v);
        }
    }
    None
}

/// Minimal-path length and greedy minimal-path CDP for a single pair:
/// `(lmin(s,t), cmin(s,t))` of §IV-B1.
pub fn lmin_cmin(g: &Graph, eids: &EdgeIds, s: RouterId, t: RouterId) -> (u32, u32) {
    let dist = g.bfs(s);
    let l = dist[t as usize];
    assert!(l != u32::MAX, "disconnected pair");
    if l == 0 {
        return (0, 0);
    }
    (l, cdp(g, eids, &[s], &[t], l))
}

/// Exact number of edge-disjoint `s→t` paths with *no* length bound
/// (Menger's theorem / unit-capacity max-flow, BFS augmenting paths).
/// Used to validate the greedy bound: `cdp(..., l=∞) ≤ maxflow`.
pub fn edge_disjoint_maxflow(g: &Graph, s: RouterId, t: RouterId) -> u32 {
    assert_ne!(s, t);
    let n = g.n();
    // Residual: per directed slot, capacity 0/1; an undirected edge becomes
    // two anti-parallel unit arcs.
    let eids = EdgeIds::new(g);
    // flow[e]: -1, 0, +1 on canonical orientation (u<v => +1 means u->v).
    let mut flow = vec![0i8; g.m()];
    let canon: Vec<(u32, u32)> = g.edge_vec();
    let mut total = 0u32;
    loop {
        // BFS in residual graph.
        let mut parent = vec![(u32::MAX, u32::MAX); n]; // (prev node, edge id)
        let mut queue = vec![s];
        parent[s as usize] = (s, u32::MAX);
        let mut head = 0;
        let mut reached = false;
        'bfs: while head < queue.len() {
            let u = queue[head];
            head += 1;
            for (port, &v) in g.neighbors(u).iter().enumerate() {
                if parent[v as usize].0 != u32::MAX {
                    continue;
                }
                let e = eids.edge_id(u, port as u32) as usize;
                let forward = canon[e].0 == u; // traveling in canonical direction
                let residual = if forward { flow[e] < 1 } else { flow[e] > -1 };
                if !residual {
                    continue;
                }
                parent[v as usize] = (u, e as u32);
                if v == t {
                    reached = true;
                    break 'bfs;
                }
                queue.push(v);
            }
        }
        if !reached {
            return total;
        }
        // Augment.
        let mut cur = t;
        while cur != s {
            let (prev, e) = parent[cur as usize];
            let e = e as usize;
            if canon[e].0 == prev {
                flow[e] += 1;
            } else {
                flow[e] -= 1;
            }
            cur = prev;
        }
        total += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn theta_graph() -> Graph {
        // Two routers joined by three internally disjoint paths of lengths
        // 1, 2, 3: edges 0-1; 0-2-1; 0-3-4-1.
        Graph::from_edges(5, &[(0, 1), (0, 2), (2, 1), (0, 3), (3, 4), (4, 1)])
    }

    #[test]
    fn cdp_respects_length_bound() {
        let g = theta_graph();
        let e = EdgeIds::new(&g);
        assert_eq!(cdp(&g, &e, &[0], &[1], 1), 1);
        assert_eq!(cdp(&g, &e, &[0], &[1], 2), 2);
        assert_eq!(cdp(&g, &e, &[0], &[1], 3), 3);
        assert_eq!(cdp(&g, &e, &[0], &[1], 10), 3);
    }

    #[test]
    fn lmin_cmin_basic() {
        let g = theta_graph();
        let e = EdgeIds::new(&g);
        assert_eq!(lmin_cmin(&g, &e, 0, 1), (1, 1));
        // 2→3: the only length-2 path is 2-0-3 (2-1-4-3 has length 3).
        assert_eq!(lmin_cmin(&g, &e, 2, 3), (2, 1));
    }

    #[test]
    fn maxflow_matches_greedy_on_clique() {
        // K5: 4 edge-disjoint paths between any pair (degree bound).
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        let g = Graph::from_edges(5, &edges);
        let e = EdgeIds::new(&g);
        assert_eq!(edge_disjoint_maxflow(&g, 0, 4), 4);
        assert_eq!(cdp(&g, &e, &[0], &[4], 2), 4);
    }

    #[test]
    fn greedy_no_more_than_maxflow() {
        let t = fatpaths_net::topo::slimfly::slim_fly(5, 1).unwrap();
        let g = &t.graph;
        let e = EdgeIds::new(g);
        for (s, d) in [(0u32, 7u32), (3, 30), (10, 44)] {
            let mf = edge_disjoint_maxflow(g, s, d);
            let greedy = cdp(g, &e, &[s], &[d], 64);
            assert!(greedy <= mf, "greedy {greedy} > maxflow {mf}");
            // On these dense symmetric graphs greedy is near-exact.
            assert!(
                greedy + 2 >= mf,
                "greedy {greedy} too far from maxflow {mf}"
            );
        }
    }

    #[test]
    fn multi_source_sets() {
        let g = theta_graph();
        let e = EdgeIds::new(&g);
        // From {0} to {1,4}: edge-disjoint: 0-1, 0-2-1... and 0-3-4.
        assert_eq!(cdp(&g, &e, &[0], &[1, 4], 2), 3);
    }

    #[test]
    fn sf_three_almost_minimal_paths() {
        // §IV-C2 takeaway: SF offers ≥3 disjoint paths at lmin+1 = 3 hops.
        let t = fatpaths_net::topo::slimfly::slim_fly(7, 1).unwrap();
        let g = &t.graph;
        let e = EdgeIds::new(g);
        let dist = g.bfs(0);
        let far: Vec<u32> = (0..g.n() as u32)
            .filter(|&v| dist[v as usize] == 2)
            .collect();
        let mut ok = 0;
        for &v in far.iter().take(20) {
            if cdp(g, &e, &[0], &[v], 3) >= 3 {
                ok += 1;
            }
        }
        assert!(
            ok >= 18,
            "only {ok}/20 SF pairs have 3 disjoint 3-hop paths"
        );
    }
}
