//! Per-layer destination-based forwarding tables (Listing 3, §V-C/§V-E).
//!
//! For each layer `i` and destination router `t`, the forwarding function
//! `σᵢ(s, t)` returns the output *port of the base graph* that is the first
//! hop of a minimal path from `s` to `t` **within layer i**. Tables are
//! built from one BFS per (layer, destination) — `O(Nr · m)` per layer,
//! parallelized over destinations — and store one `u16` port per
//! (destination, source): the `O(Nr)`-per-destination compression of §V-E
//! (all endpoints of a router share its routes).
//!
//! When several neighbors lie on minimal paths, the tie is broken by a
//! deterministic hash of `(layer, src, dst)`, which decorrelates the
//! choices across layers ("we try to pick different next-hop choices for
//! each layer", §V-B) and across sources.

use crate::layers::LayerSet;
use fatpaths_net::graph::{Graph, RouterId, UNREACHABLE};
use rayon::prelude::*;

/// Marker for "no route" / "self" in the flat tables.
pub const NO_PORT: u16 = u16::MAX;

/// Forwarding tables for every layer of a [`LayerSet`].
#[derive(Clone, Debug)]
pub struct RoutingTables {
    nr: usize,
    /// `tables[layer][dst * nr + src]` = base-graph output port at `src`.
    tables: Vec<Vec<u16>>,
    /// `dists[layer][dst * nr + src]` = hop distance within the layer
    /// (`u8::MAX` if unreachable). Used by adaptivity and analysis.
    dists: Vec<Vec<u8>>,
}

/// FNV-1a on a 64-bit key — the deterministic tie-breaker (the paper's
/// routers use Fowler–Noll–Vo hashing for ECMP; we reuse it here).
#[inline]
pub fn fnv1a(key: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for i in 0..8 {
        h ^= (key >> (8 * i)) & 0xff;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl RoutingTables {
    /// Builds tables for all layers. `base` must be the graph the layers
    /// were sampled from (ports refer to it).
    ///
    /// All `(layer, destination)` rows are filled in one flat parallel
    /// pass across the entire layer vector — rather than layer by layer —
    /// so thread utilization stays high even when the per-layer row count
    /// is small relative to the pool.
    pub fn build(base: &Graph, layers: &LayerSet) -> Self {
        let nr = base.n();
        for lg in &layers.graphs {
            assert_eq!(lg.n(), nr, "layer router count mismatch");
        }
        let mut tables: Vec<Vec<u16>> = (0..layers.len()).map(|_| vec![NO_PORT; nr * nr]).collect();
        let mut dists: Vec<Vec<u8>> = (0..layers.len()).map(|_| vec![u8::MAX; nr * nr]).collect();
        let rows: Vec<(usize, usize, &mut [u16], &mut [u8])> = tables
            .iter_mut()
            .zip(dists.iter_mut())
            .enumerate()
            .flat_map(|(li, (table, dmat))| {
                table
                    .chunks_mut(nr)
                    .zip(dmat.chunks_mut(nr))
                    .enumerate()
                    .map(move |(dst, (trow, drow))| (li, dst, trow, drow))
            })
            .collect();
        rows.into_par_iter().for_each(|(li, dst, trow, drow)| {
            fill_destination(base, layers.layer(li), li as u32, dst as u32, trow, drow);
        });
        RoutingTables { nr, tables, dists }
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.tables.len()
    }

    /// Number of routers.
    pub fn nr(&self) -> usize {
        self.nr
    }

    /// `σᵢ(src, dst)`: output port at `src` toward `dst` in layer `layer`,
    /// or `None` if `dst` is unreachable in that layer (or `src == dst`).
    #[inline]
    pub fn next_port(&self, layer: usize, src: RouterId, dst: RouterId) -> Option<u16> {
        let p = self.tables[layer][dst as usize * self.nr + src as usize];
        (p != NO_PORT).then_some(p)
    }

    /// Hop distance from `src` to `dst` within `layer` (`None` if
    /// unreachable).
    #[inline]
    pub fn layer_distance(&self, layer: usize, src: RouterId, dst: RouterId) -> Option<u32> {
        let d = self.dists[layer][dst as usize * self.nr + src as usize];
        (d != u8::MAX).then_some(d as u32)
    }

    /// True iff `dst` is reachable from `src` within `layer`.
    #[inline]
    pub fn reachable(&self, layer: usize, src: RouterId, dst: RouterId) -> bool {
        src == dst || self.tables[layer][dst as usize * self.nr + src as usize] != NO_PORT
    }

    /// Resolves the full router path `src → dst` in `layer` by iterating σ.
    /// Returns `None` if unreachable. The result includes both endpoints.
    pub fn path(
        &self,
        base: &Graph,
        layer: usize,
        src: RouterId,
        dst: RouterId,
    ) -> Option<Vec<RouterId>> {
        let mut path = vec![src];
        let mut cur = src;
        while cur != dst {
            let port = self.next_port(layer, cur, dst)?;
            cur = base.neighbor_at(cur, port as u32);
            path.push(cur);
            if path.len() > self.nr + 1 {
                unreachable!("forwarding loop — tables are distance-decreasing by construction");
            }
        }
        Some(path)
    }

    /// Approximate memory footprint in bytes (for the §VII-C remark that
    /// routing tables are a simulation memory concern).
    pub fn memory_bytes(&self) -> usize {
        self.tables.len() * self.nr * self.nr * (std::mem::size_of::<u16>() + 1)
    }
}

/// Fills one destination row: BFS from `dst` in the layer graph, then picks
/// for every source a hash-selected minimal next hop.
fn fill_destination(
    base: &Graph,
    lg: &Graph,
    layer: u32,
    dst: u32,
    trow: &mut [u16],
    drow: &mut [u8],
) {
    let dist = lg.bfs(dst);
    for (src, &d) in dist.iter().enumerate() {
        if d == UNREACHABLE || src as u32 == dst {
            continue;
        }
        drow[src] = d.min(u8::MAX as u32 - 1) as u8;
        // Candidates: layer-neighbors one step closer to dst.
        let src = src as u32;
        let nbs = lg.neighbors(src);
        let count = nbs.iter().filter(|&&v| dist[v as usize] + 1 == d).count();
        debug_assert!(count > 0);
        let key = (layer as u64) << 48 | (src as u64) << 24 | dst as u64;
        let pick = (fnv1a(key) % count as u64) as usize;
        let chosen = nbs
            .iter()
            .filter(|&&v| dist[v as usize] + 1 == d)
            .nth(pick)
            .copied()
            .unwrap();
        let port = base
            .port_of(src, chosen)
            .expect("layer edge must exist in base graph");
        trow[src as usize] = port as u16;
    }
    drow[dst as usize] = 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{build_random_layers, LayerConfig, LayerSet};
    use fatpaths_net::topo::slimfly::slim_fly;

    fn tables_for(q: u32, n_layers: usize, rho: f64) -> (Graph, RoutingTables) {
        let t = slim_fly(q, 1).unwrap();
        let ls = build_random_layers(&t.graph, &LayerConfig::new(n_layers, rho, 7));
        let rt = RoutingTables::build(&t.graph, &ls);
        (t.graph.clone(), rt)
    }

    #[test]
    fn layer_zero_paths_are_minimal() {
        let (g, rt) = tables_for(5, 3, 0.6);
        for (s, t) in [(0u32, 17u32), (3, 44), (10, 29)] {
            let p = rt.path(&g, 0, s, t).unwrap();
            let d = g.bfs(s)[t as usize];
            assert_eq!(p.len() as u32 - 1, d, "layer-0 path not minimal");
        }
    }

    #[test]
    fn sparse_layer_paths_valid_and_loop_free() {
        let (g, rt) = tables_for(7, 5, 0.5);
        for layer in 0..rt.n_layers() {
            for (s, t) in [(0u32, 90u32), (5, 60), (33, 12)] {
                let p = rt.path(&g, layer, s, t).expect("connected layer");
                // Consecutive hops are base edges.
                for w in p.windows(2) {
                    assert!(g.has_edge(w[0], w[1]));
                }
                assert_eq!(p.first(), Some(&s));
                assert_eq!(p.last(), Some(&t));
                // No router repeats (loop-freedom).
                let mut q = p.clone();
                q.sort_unstable();
                q.dedup();
                assert_eq!(q.len(), p.len());
            }
        }
    }

    #[test]
    fn sparse_layers_yield_non_minimal_paths() {
        // §V-B: minimal routes in a sparse layer are usually non-minimal on
        // the full topology — that is the whole point.
        let (g, rt) = tables_for(7, 6, 0.4);
        let mut longer = 0;
        let mut total = 0;
        for layer in 1..rt.n_layers() {
            for s in (0..98u32).step_by(13) {
                for t in (1..98u32).step_by(17) {
                    if s == t {
                        continue;
                    }
                    let d_min = g.bfs(s)[t as usize];
                    let d_layer = rt.layer_distance(layer, s, t).unwrap();
                    assert!(d_layer >= d_min);
                    total += 1;
                    if d_layer > d_min {
                        longer += 1;
                    }
                }
            }
        }
        assert!(
            longer * 3 > total,
            "expected a large fraction of non-minimal layer paths ({longer}/{total})"
        );
    }

    #[test]
    fn path_length_matches_layer_distance() {
        let (g, rt) = tables_for(5, 4, 0.5);
        for layer in 0..4 {
            for (s, t) in [(1u32, 40u32), (8, 31)] {
                let p = rt.path(&g, layer, s, t).unwrap();
                assert_eq!(p.len() as u32 - 1, rt.layer_distance(layer, s, t).unwrap());
            }
        }
    }

    #[test]
    fn different_layers_give_different_paths() {
        let (g, rt) = tables_for(7, 8, 0.5);
        // For a sample of pairs, at least one sparse layer must route
        // differently than layer 0 (path diversity across layers).
        let mut diverse = 0;
        let pairs = [(0u32, 50u32), (3, 77), (20, 91), (40, 13), (60, 25)];
        for &(s, t) in &pairs {
            let p0 = rt.path(&g, 0, s, t).unwrap();
            if (1..rt.n_layers()).any(|l| rt.path(&g, l, s, t).unwrap() != p0) {
                diverse += 1;
            }
        }
        assert!(diverse >= 4, "only {diverse}/5 pairs saw layer diversity");
    }

    #[test]
    fn minimal_only_tables() {
        let t = slim_fly(5, 1).unwrap();
        let ls = LayerSet::minimal_only(&t.graph);
        let rt = RoutingTables::build(&t.graph, &ls);
        assert_eq!(rt.n_layers(), 1);
        assert!(rt.reachable(0, 0, 49));
        assert_eq!(rt.next_port(0, 7, 7), None);
    }

    #[test]
    fn fnv_is_deterministic_and_spread() {
        let a = fnv1a(1);
        let b = fnv1a(1);
        let c = fnv1a(2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
