//! PAST comparison baseline (Stephens et al., CoNEXT'12; Listing 5,
//! Appendix C-C).
//!
//! PAST installs one spanning tree *per destination address*; a router
//! forwards toward a destination along that destination's unique tree path.
//! Multi-pathing between a fixed pair is therefore impossible (§VI), which
//! is exactly the deficiency Fig. 9 quantifies. Two variants:
//!
//! * **BFS** — tree rooted at the destination, random tie-breaking
//!   (distributes trees over links);
//! * **Valiant-inspired non-minimal** — tree rooted at a random
//!   intermediate switch, as in Listing 5.

use fatpaths_net::graph::{Graph, RouterId};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Which PAST tree construction to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PastVariant {
    /// Destination-rooted BFS with random tie-breaking.
    Bfs,
    /// Random-intermediate-rooted BFS (non-minimal, Valiant-inspired).
    Valiant,
}

/// The per-destination spanning trees: `parent[dst][v]` = next hop of `v`
/// toward `dst` along `dst`'s tree (`u32::MAX` at `dst` itself).
#[derive(Clone, Debug)]
pub struct PastTrees {
    parent: Vec<Vec<u32>>,
}

impl PastTrees {
    /// Builds one spanning tree per destination router.
    pub fn build(g: &Graph, variant: PastVariant, seed: u64) -> Self {
        let nr = g.n();
        let mut parent = Vec::with_capacity(nr);
        for dst in 0..nr as u32 {
            let mut rng =
                StdRng::seed_from_u64(seed ^ (0xD1F9_6E37u64.wrapping_mul(dst as u64 + 1)));
            let root = match variant {
                PastVariant::Bfs => dst,
                PastVariant::Valiant => rng.random_range(0..nr as u32),
            };
            parent.push(tree_toward(g, dst, root, &mut rng));
        }
        PastTrees { parent }
    }

    /// Next hop of `src` toward `dst` in `dst`'s tree.
    #[inline]
    pub fn next_hop(&self, src: RouterId, dst: RouterId) -> Option<RouterId> {
        let p = self.parent[dst as usize][src as usize];
        (p != u32::MAX).then_some(p)
    }

    /// Full path `src → dst` (unique in PAST).
    pub fn path(&self, src: RouterId, dst: RouterId) -> Option<Vec<RouterId>> {
        let mut path = vec![src];
        let mut cur = src;
        let n = self.parent.len();
        while cur != dst {
            cur = self.next_hop(cur, dst)?;
            path.push(cur);
            if path.len() > n + 1 {
                return None; // defensive; trees cannot loop
            }
        }
        Some(path)
    }

    /// Number of trees (= number of destinations = `Nr`), the layer cost
    /// §VI-B charges PAST with.
    pub fn num_trees(&self) -> usize {
        self.parent.len()
    }
}

/// Builds a spanning tree that routes *toward* `dst`. For the Valiant
/// variant (`root != dst`) the tree is grown from `root`, then re-oriented
/// so every router's parent pointer walks to `dst` through the tree.
fn tree_toward(g: &Graph, dst: RouterId, root: RouterId, rng: &mut StdRng) -> Vec<u32> {
    let nr = g.n();
    // BFS from root with randomized neighbor order → tree edges.
    let mut order: Vec<u32> = Vec::with_capacity(nr);
    let mut tree_parent = vec![u32::MAX; nr]; // toward root
    let mut visited = vec![false; nr];
    visited[root as usize] = true;
    order.push(root);
    let mut head = 0;
    let mut nbs: Vec<u32> = Vec::new();
    while head < order.len() {
        let u = order[head];
        head += 1;
        nbs.clear();
        nbs.extend_from_slice(g.neighbors(u));
        nbs.shuffle(rng);
        for &v in &nbs {
            if !visited[v as usize] {
                visited[v as usize] = true;
                tree_parent[v as usize] = u;
                order.push(v);
            }
        }
    }
    if root == dst {
        return tree_parent;
    }
    // Re-orient toward dst: build adjacency of the tree, BFS from dst.
    let mut tree_edges: Vec<(u32, u32)> = Vec::with_capacity(nr - 1);
    for v in 0..nr as u32 {
        let p = tree_parent[v as usize];
        if p != u32::MAX {
            tree_edges.push((v, p));
        }
    }
    let tg = Graph::from_edges(nr, &tree_edges);
    let mut toward = vec![u32::MAX; nr];
    let mut queue = vec![dst];
    let mut seen = vec![false; nr];
    seen[dst as usize] = true;
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        for &v in tg.neighbors(u) {
            if !seen[v as usize] {
                seen[v as usize] = true;
                toward[v as usize] = u;
                queue.push(v);
            }
        }
    }
    toward
}

#[cfg(test)]
mod tests {
    use super::*;
    use fatpaths_net::topo::slimfly::slim_fly;

    #[test]
    fn paths_reach_destination() {
        let t = slim_fly(5, 1).unwrap();
        for variant in [PastVariant::Bfs, PastVariant::Valiant] {
            let trees = PastTrees::build(&t.graph, variant, 3);
            for (s, d) in [(0u32, 17u32), (44, 3), (10, 10)] {
                if s == d {
                    continue;
                }
                let p = trees.path(s, d).unwrap();
                assert_eq!(*p.first().unwrap(), s);
                assert_eq!(*p.last().unwrap(), d);
                for w in p.windows(2) {
                    assert!(t.graph.has_edge(w[0], w[1]));
                }
            }
        }
    }

    #[test]
    fn bfs_variant_is_minimal() {
        let t = slim_fly(5, 1).unwrap();
        let trees = PastTrees::build(&t.graph, PastVariant::Bfs, 1);
        let d0 = t.graph.bfs(17);
        for s in 0..t.num_routers() as u32 {
            if s == 17 {
                continue;
            }
            let p = trees.path(s, 17).unwrap();
            assert_eq!(
                p.len() as u32 - 1,
                d0[s as usize],
                "PAST-BFS path not minimal"
            );
        }
    }

    #[test]
    fn valiant_variant_can_be_non_minimal() {
        let t = slim_fly(7, 1).unwrap();
        let trees = PastTrees::build(&t.graph, PastVariant::Valiant, 5);
        let mut longer = 0;
        for dst in (0..98u32).step_by(9) {
            let dd = t.graph.bfs(dst);
            for s in (1..98u32).step_by(13) {
                if s == dst {
                    continue;
                }
                let p = trees.path(s, dst).unwrap();
                if p.len() as u32 - 1 > dd[s as usize] {
                    longer += 1;
                }
            }
        }
        assert!(longer > 0, "Valiant PAST produced only minimal paths");
    }

    #[test]
    fn single_path_per_pair() {
        // PAST's defining limitation: the path is unique per (src, dst).
        let t = slim_fly(5, 1).unwrap();
        let trees = PastTrees::build(&t.graph, PastVariant::Bfs, 2);
        let p1 = trees.path(3, 40).unwrap();
        let p2 = trees.path(3, 40).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(trees.num_trees(), t.num_routers());
    }
}
