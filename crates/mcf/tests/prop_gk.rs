//! Property-based tests for the Garg–Könemann solver: feasibility, scale
//! invariance, and monotonicity.

use fatpaths_mcf::gk::{max_concurrent_flow, Commodity};
use proptest::prelude::*;

/// Random small instance: `m` edges, up to 6 commodities with 1–3 paths.
fn arb_instance() -> impl Strategy<Value = (usize, Vec<Commodity>)> {
    (3usize..10).prop_flat_map(|m| {
        let path = prop::collection::vec(0..m as u32, 1..4);
        let com = (0.5f64..4.0, prop::collection::vec(path, 1..4))
            .prop_map(|(demand, paths)| Commodity { demand, paths });
        (Just(m), prop::collection::vec(com, 1..6))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn solution_is_feasible((m, coms) in arb_instance()) {
        let caps = vec![1.0; m];
        let r = max_concurrent_flow(&caps, &coms, 0.1);
        prop_assert!(r.throughput >= 0.0);
        for (i, &u) in r.edge_utilization.iter().enumerate() {
            prop_assert!(u <= 1.0 + 0.05, "edge {i} utilization {u} infeasible");
        }
    }

    #[test]
    fn throughput_scales_with_capacity((m, coms) in arb_instance()) {
        let r1 = max_concurrent_flow(&vec![1.0; m], &coms, 0.1);
        let r3 = max_concurrent_flow(&vec![3.0; m], &coms, 0.1);
        prop_assume!(r1.throughput > 1e-6);
        let ratio = r3.throughput / r1.throughput;
        prop_assert!((2.5..3.6).contains(&ratio), "scaling ratio {ratio}");
    }

    #[test]
    fn more_demand_never_more_throughput((m, coms) in arb_instance()) {
        let caps = vec![1.0; m];
        let r1 = max_concurrent_flow(&caps, &coms, 0.1);
        let doubled: Vec<Commodity> = coms
            .iter()
            .map(|c| Commodity { demand: c.demand * 2.0, paths: c.paths.clone() })
            .collect();
        let r2 = max_concurrent_flow(&caps, &doubled, 0.1);
        // Doubling every demand halves the achievable scaler (±ε slack).
        prop_assert!(r2.throughput <= r1.throughput * 0.65 + 1e-9,
            "T(2d)={} vs T(d)={}", r2.throughput, r1.throughput);
    }
}
