//! `fatpaths-trace` — summarize an NDJSON telemetry trace.
//!
//! ```text
//! fatpaths-trace <trace.ndjson>
//! ```
//!
//! Prints the run header, the top-loaded links, the per-layer
//! utilization timeline, span waterfalls for the first sampled flows,
//! and the repair-convergence timeline. Exits nonzero on a missing,
//! empty, or malformed trace — CI uses that as the "trace parses"
//! assertion.

use fatpaths_telemetry::{SpanKind, Trace};
use std::process::ExitCode;

/// Max timeline rows / waterfall flows printed before truncating.
const MAX_INTERVALS: usize = 48;
const MAX_FLOWS: usize = 8;

fn gbps(bytes: u64, interval_ps: u64) -> f64 {
    if interval_ps == 0 {
        return 0.0;
    }
    bytes as f64 * 8_000.0 / interval_ps as f64
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [path] = args.as_slice() else {
        eprintln!("usage: fatpaths-trace <trace.ndjson>");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("fatpaths-trace: read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let tr = match Trace::parse_ndjson(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("fatpaths-trace: parse {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let m = &tr.meta;
    println!(
        "trace: {} shard(s), interval {} µs, span 1-in-{}, end {:.3} ms",
        m.shards,
        m.interval_ps as f64 / 1e6,
        m.span_every,
        m.end_time as f64 / 1e9
    );
    println!(
        "       {} link rows, {} layer rows, {} shard samples, {} spans, {} repairs; \
         {:.3} MiB on the wire",
        tr.link_rows.len(),
        tr.layer_rows.len(),
        tr.shard_rows.len(),
        tr.spans.len(),
        tr.repairs.len(),
        tr.total_wire_bytes() as f64 / (1 << 20) as f64
    );

    println!("\n== top-loaded links (directed output ports) ==");
    let top = tr.top_links(10);
    if top.is_empty() {
        println!("(no wire traffic recorded)");
    }
    for (port, bytes) in top {
        println!(
            "port {port:>7}: {:>12} bytes  ({:.4} Gb/s run-average over active intervals)",
            bytes,
            gbps(
                bytes
                    / tr.link_rows
                        .iter()
                        .filter(|r| r.port == port)
                        .count()
                        .max(1) as u64,
                m.interval_ps
            )
        );
    }

    println!("\n== layer-utilization timeline (Gb/s per interval) ==");
    let n_layers = m.n_layers.max(1) as usize;
    let last_iv = tr.layer_rows.iter().map(|r| r.iv).max();
    if let Some(last_iv) = last_iv {
        print!("{:>8}", "t_ms");
        for l in 0..n_layers {
            print!(" {:>8}", format!("L{l}"));
        }
        println!();
        let shown = (last_iv + 1).min(MAX_INTERVALS as u64);
        for iv in 0..shown {
            let mut per = vec![0u64; n_layers];
            for r in tr.layer_rows.iter().filter(|r| r.iv == iv) {
                if (r.layer as usize) < n_layers {
                    per[r.layer as usize] += r.bytes;
                }
            }
            print!("{:>8.3}", (iv * m.interval_ps) as f64 / 1e9);
            for b in per {
                print!(" {:>8.3}", gbps(b, m.interval_ps));
            }
            println!();
        }
        if last_iv + 1 > shown {
            println!("… {} more interval(s)", last_iv + 1 - shown);
        }
        println!(
            "peak per-layer utilization: {:.4} Gb/s",
            tr.peak_layer_gbps()
        );
    } else {
        println!("(no layer traffic recorded)");
    }

    println!("\n== span waterfalls ==");
    if tr.spans.is_empty() {
        println!("(no spans sampled — span_every = {})", m.span_every);
    }
    let mut shown = 0usize;
    let mut i = 0usize;
    while i < tr.spans.len() && shown < MAX_FLOWS {
        let flow = tr.spans[i].flow;
        let start = tr.spans[i].t;
        println!("flow {flow} (t0 = {:.3} ms):", start as f64 / 1e9);
        while i < tr.spans.len() && tr.spans[i].flow == flow {
            let s = &tr.spans[i];
            let detail = match s.kind {
                SpanKind::LayerSwitch => format!("  layer {} → {}", s.a, s.b),
                SpanKind::Finish => format!("  pkts={} trims={}", s.a, s.b),
                _ => String::new(),
            };
            println!(
                "  +{:>10.3} µs  {}{}",
                (s.t - start) as f64 / 1e6,
                s.kind.name(),
                detail
            );
            i += 1;
        }
        shown += 1;
    }
    let remaining = tr.spans[i..]
        .iter()
        .map(|s| s.flow)
        .collect::<std::collections::BTreeSet<_>>()
        .len();
    if remaining > 0 {
        println!("… {remaining} more sampled flow(s)");
    }

    println!("\n== repair convergence ==");
    if tr.repairs.is_empty() {
        println!("(no repair passes)");
    }
    for r in &tr.repairs {
        println!(
            "repair @ {:>9.3} ms: {} row(s), {} FIB row(s)",
            r.at as f64 / 1e9,
            r.rows,
            r.fib_rows
        );
    }
    if !tr.repairs.is_empty() {
        println!(
            "time to quiescence after last repair: {:.3} ms",
            tr.time_to_quiescence_ps() as f64 / 1e9
        );
    }
    ExitCode::SUCCESS
}
