//! Benchmarks for the path-diversity kernels of §IV.

use criterion::{criterion_group, criterion_main, Criterion};
use fatpaths_diversity::cdp::{cdp, edge_disjoint_maxflow, EdgeIds};
use fatpaths_diversity::interference::path_interference;
use fatpaths_net::topo::slimfly::slim_fly;
use std::hint::black_box;

fn bench_diversity(c: &mut Criterion) {
    let t = slim_fly(19, 14).unwrap();
    let eids = EdgeIds::new(&t.graph);
    let mut g = c.benchmark_group("diversity_sf722");
    g.bench_function("cdp_l3", |b| {
        b.iter(|| black_box(cdp(&t.graph, &eids, &[0], &[500], 3)))
    });
    g.bench_function("cdp_l4", |b| {
        b.iter(|| black_box(cdp(&t.graph, &eids, &[0], &[500], 4)))
    });
    g.bench_function("path_interference_l3", |b| {
        b.iter(|| black_box(path_interference(&t.graph, &eids, 0, 500, 101, 650, 3)))
    });
    g.bench_function("exact_maxflow", |b| {
        b.iter(|| black_box(edge_disjoint_maxflow(&t.graph, 0, 500)))
    });
    g.finish();
}

criterion_group!(benches, bench_diversity);
criterion_main!(benches);
