//! Fig. 13 — large-scale runs: packet-level at the ≈80k-endpoint class,
//! fluid max-min at ≈1M endpoints (SF vs equivalent Jellyfish FCT
//! histograms); see DESIGN.md §2.3 for the substitution argument.

use crate::common::{f, label, pattern_workload, post_warmup, write_summary, Csv};
use fatpaths_core::fwd::fnv1a;
use fatpaths_core::layers::{build_random_layers, LayerConfig};
use fatpaths_net::classes::{build, SizeClass};
use fatpaths_net::graph::{Graph, UNREACHABLE};
use fatpaths_net::topo::jellyfish::equivalent_jellyfish;
use fatpaths_net::topo::{TopoKind, Topology};
use fatpaths_sim::fluid::{bulk_fcts, LinkSpace};
use fatpaths_sim::metrics::{histogram, throughput_by_size, Summary};
use fatpaths_sim::{Scenario, SchemeSpec};
use fatpaths_workloads::patterns::Pattern;
use rayon::prelude::*;
use rustc_hash::FxHashMap;
use std::io;

/// Packet-level part: SF, SF-JF and DF at the large class.
pub fn fig13_packet(quick: bool) -> io::Result<()> {
    // Smoke mode exists to prove the pipeline runs, not to be large.
    let class = if crate::common::is_smoke() {
        SizeClass::Small
    } else if quick {
        SizeClass::Medium
    } else {
        SizeClass::Large
    };
    let sf = build(TopoKind::SlimFly, class, 1);
    let sfjf = equivalent_jellyfish(&sf, 5);
    let df = build(TopoKind::Dragonfly, class, 1);
    let window = if quick { 0.002 } else { 0.0015 };
    let mut csv = Csv::new(
        "fig13_large_packet",
        &["topology", "flow_kib", "mean_mib_s", "tail1_mib_s"],
    )?;
    let mut hist_csv = Csv::new("fig13_large_fct_hist", &["topology", "fct_ms_bin", "count"])?;
    let mut summary = String::from("Fig. 13 (packet) — large-scale throughput and FCTs\n");
    // This is the one memory-bound experiment (per-topology tables are
    // hundreds of MB at Nr ≈ 3–7k), so topologies run sequentially to
    // keep peak memory at one topology's worth; parallelism comes from
    // the stages *inside* each run (table builds, per-destination BFS).
    let topos = [&sf, &sfjf, &df];
    let results: Vec<_> = topos
        .iter()
        .map(|topo| {
            let n_layers = 4; // memory-conscious at Nr ≈ 3–7k (§VII-C uses 4 too)
            let flows = pattern_workload(topo, &Pattern::Permutation, 300.0, window, true, 13);
            post_warmup(
                &Scenario::on(topo)
                    .scheme(SchemeSpec::LayeredRandom { n_layers, rho: 0.6 })
                    .workload(&flows)
                    .seed(3)
                    .run(),
                window,
            )
        })
        .collect();
    for (topo, res) in topos.iter().zip(&results) {
        let groups = throughput_by_size(res);
        for &(size, m, t1, _) in &groups {
            csv.row(&[label(topo), (size / 1024).to_string(), f(m), f(t1)])?;
        }
        // "Long flows": the discretized size closest to 1 MiB.
        let long_size = groups
            .iter()
            .map(|&(s, ..)| s)
            .min_by_key(|&s| s.abs_diff(1 << 20))
            .unwrap_or(1 << 20);
        let fcts_1mib: Vec<f64> = res
            .completed()
            .filter(|fl| fl.size == long_size)
            .filter_map(|fl| fl.fct_s().map(|s| s * 1e3))
            .collect();
        let fct = Summary::of(&fcts_1mib);
        for (bin, &c) in histogram(&fcts_1mib, 0.0, 25.0, 50)
            .counts
            .iter()
            .enumerate()
        {
            if c > 0 {
                hist_csv.row(&[label(topo), f(bin as f64 * 0.5), c.to_string()])?;
            }
        }
        summary.push_str(&format!(
            "{:<6} N={:<6} flows={:<6} 1MiB FCT mean {:>6.2} ms p99 {:>7.2} ms\n",
            label(topo),
            topo.num_endpoints(),
            res.flows.len(),
            fct.mean,
            fct.p99
        ));
    }
    csv.finish()?;
    hist_csv.finish()?;
    summary.push_str("Paper: slight mean decrease vs 10k; DF tail worst (global-link overlap).\n");
    write_summary("fig13_large_packet", &summary)
}

/// BFS parent pointers toward `dst` in `g` (`parent[v]` = next hop of `v`).
fn parents_toward(g: &Graph, dst: u32) -> Vec<u32> {
    let n = g.n();
    let mut dist = vec![UNREACHABLE; n];
    let mut parent = vec![u32::MAX; n];
    let mut queue = Vec::with_capacity(n);
    dist[dst as usize] = 0;
    queue.push(dst);
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        for &v in g.neighbors(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = dist[u as usize] + 1;
                parent[v as usize] = u;
                queue.push(v);
            }
        }
    }
    parent
}

/// Fluid part: ≈1M-endpoint FCT histograms, SF vs equivalent Jellyfish.
/// Routing tables at this scale would need gigabytes, so paths come from
/// per-(layer, destination) BFS batches over the layer graphs.
pub fn fig13_fluid(quick: bool) -> io::Result<()> {
    // Smoke mode exists to prove the pipeline runs, not to be large.
    let class = if crate::common::is_smoke() {
        SizeClass::Small
    } else if quick {
        SizeClass::Large
    } else {
        SizeClass::Huge
    };
    let sf = build(TopoKind::SlimFly, class, 1);
    let sfjf = equivalent_jellyfish(&sf, 5);
    let mut csv = Csv::new("fig13_fluid_hist", &["topology", "fct_ms_bin", "count"])?;
    let mut summary = format!(
        "Fig. 13 (fluid) — {}-endpoint FCT histograms, 1 MiB flows\n",
        sf.num_endpoints()
    );
    for topo in [&sf, &sfjf] {
        let fcts_ms = fluid_fcts(topo, 4);
        let fct = Summary::of(&fcts_ms);
        for (bin, &c) in histogram(&fcts_ms, 0.0, 10.0, 50).counts.iter().enumerate() {
            if c > 0 {
                csv.row(&[label(topo), f(bin as f64 * 0.2), c.to_string()])?;
            }
        }
        summary.push_str(&format!(
            "{:<6} flows={} mean {:>5.2} ms p99 {:>5.2} ms max {:>6.2} ms\n",
            label(topo),
            fcts_ms.len(),
            fct.mean,
            fct.p99,
            fct.max
        ));
    }
    csv.finish()?;
    summary.push_str("Paper: SF flows finish slightly later than SF-JF at 1M endpoints.\n");
    write_summary("fig13_fluid", &summary)
}

fn fluid_fcts(topo: &Topology, n_layers: usize) -> Vec<f64> {
    let ls = build_random_layers(&topo.graph, &LayerConfig::new(n_layers, 0.6, 3));
    let links = LinkSpace::new(topo);
    let pairs: Vec<(u32, u32)> = Pattern::Permutation
        .flows(topo.num_endpoints() as u64, 77)
        .into_iter()
        .filter(|&(s, d)| topo.endpoint_router(s) != topo.endpoint_router(d))
        .collect();
    // Per-flow layer = hash(flow): the time-average of flowlet balancing.
    let layer_of = |i: usize| (fnv1a(i as u64 ^ 0x13) % n_layers as u64) as usize;
    // Group flows by (layer, dst_router): one reverse BFS per group.
    let mut groups: FxHashMap<(usize, u32), Vec<u32>> = FxHashMap::default();
    for (i, &(_, d)) in pairs.iter().enumerate() {
        groups
            .entry((layer_of(i), topo.endpoint_router(d)))
            .or_default()
            .push(i as u32);
    }
    let group_list: Vec<((usize, u32), Vec<u32>)> = groups.into_iter().collect();
    let path_chunks: Vec<Vec<(u32, Vec<u32>)>> = group_list
        .par_iter()
        .map(|((layer, rd), flow_ids)| {
            let parent = parents_toward(ls.layer(*layer), *rd);
            flow_ids
                .iter()
                .map(|&fi| {
                    let (s, d) = pairs[fi as usize];
                    let rs = topo.endpoint_router(s);
                    let mut routers = vec![rs];
                    let mut cur = rs;
                    while cur != *rd {
                        cur = parent[cur as usize];
                        routers.push(cur);
                    }
                    (fi, links.flow_path(s, d, &routers))
                })
                .collect()
        })
        .collect();
    let mut paths: Vec<Vec<u32>> = vec![Vec::new(); pairs.len()];
    for chunk in path_chunks {
        for (fi, p) in chunk {
            paths[fi as usize] = p;
        }
    }
    let sizes = vec![1u64 << 20; pairs.len()];
    let cap_bytes_s = 10e9 / 8.0;
    let fcts = bulk_fcts(&paths, &sizes, links.len(), cap_bytes_s);
    fcts.iter().map(|s| s * 1e3).collect()
}
