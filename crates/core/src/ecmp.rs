//! ECMP-style minimal multipath primitives (§VII-A3 baselines).
//!
//! A compact all-pairs hop-distance matrix supports, at every router, the
//! set of output ports lying on *some* shortest path to a destination.
//! On top of it:
//!
//! * **ECMP** — flow-hash (FNV) picks one port per flow, statically;
//! * **packet spraying** — per-packet random pick (NDP's oblivious load
//!   balancing on fat trees);
//! * **LetFlow** — per-flowlet random re-pick (the simulator re-hashes with
//!   the flowlet id).

use crate::fwd::fnv1a;
use fatpaths_net::graph::{Graph, RouterId, UNREACHABLE};
use rayon::prelude::*;

/// All-pairs hop distances stored as `u8` (paths in the paper's networks
/// are ≤ 6 hops).
///
/// Links are bidirectional in every evaluated topology, so the matrix is
/// symmetric and only the upper triangle (`src ≤ dst`, self-distances
/// included) is stored — `nr·(nr+1)/2` bytes instead of `nr²`, which at
/// the 119k-endpoint fat tree (4 805 routers) halves an 11 MB resident
/// table that would otherwise sit under the whole simulation.
#[derive(Clone, Debug)]
pub struct DistanceMatrix {
    nr: usize,
    /// Row `s` holds `d(s, s..nr)` contiguously.
    dist: Vec<u8>,
}

impl DistanceMatrix {
    /// Index of the `(a, b)` cell in the triangular layout.
    #[inline]
    fn idx(&self, a: usize, b: usize) -> usize {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        // Rows 0..lo have lengths nr, nr−1, …: offset lo·(2nr+1−lo)/2.
        lo * (2 * self.nr + 1 - lo) / 2 + (hi - lo)
    }

    /// Builds the matrix with one BFS per source (Rayon-parallel over
    /// the uneven triangular rows).
    pub fn build(g: &Graph) -> Self {
        let nr = g.n();
        let mut dist = vec![u8::MAX; nr * (nr + 1) / 2];
        let mut rows: Vec<&mut [u8]> = Vec::with_capacity(nr);
        let mut rest = dist.as_mut_slice();
        for s in 0..nr {
            let (row, tail) = rest.split_at_mut(nr - s);
            rows.push(row);
            rest = tail;
        }
        rows.into_par_iter().enumerate().for_each(|(s, row)| {
            let d = g.bfs(s as u32);
            for (j, cell) in row.iter_mut().enumerate() {
                let dv = d[s + j];
                *cell = if dv == UNREACHABLE {
                    u8::MAX
                } else {
                    dv.min(254) as u8
                };
            }
        });
        DistanceMatrix { nr, dist }
    }

    /// Hop distance `src → dst` (`None` if unreachable).
    #[inline]
    pub fn get(&self, src: RouterId, dst: RouterId) -> Option<u32> {
        let d = self.dist[self.idx(src as usize, dst as usize)];
        (d != u8::MAX).then_some(d as u32)
    }

    /// Calls `emit` with each port of `src` lying on a shortest path
    /// toward `dst`, in ascending port order — the single home of the
    /// `+1`-distance invariant both public forms share.
    #[inline]
    fn for_each_minimal_port(
        &self,
        g: &Graph,
        src: RouterId,
        dst: RouterId,
        mut emit: impl FnMut(u16),
    ) {
        if src == dst {
            return;
        }
        let dst = dst as usize;
        let ds = self.dist[self.idx(src as usize, dst)] as u16;
        debug_assert!(ds != u8::MAX as u16);
        for (port, &nb) in g.neighbors(src).iter().enumerate() {
            if self.dist[self.idx(nb as usize, dst)] as u16 + 1 == ds {
                emit(port as u16);
            }
        }
    }

    /// Ports of `src` that lie on a shortest path toward `dst`, appended to
    /// `out` (cleared first).
    pub fn minimal_ports(&self, g: &Graph, src: RouterId, dst: RouterId, out: &mut Vec<u16>) {
        out.clear();
        self.for_each_minimal_port(g, src, dst, |p| out.push(p));
    }

    /// Ports of `src` on a shortest path toward `dst` as a [`PortSet`](crate::scheme::PortSet)
    /// (same order as [`DistanceMatrix::minimal_ports`]), the allocation-
    /// free form used by [`crate::scheme::MinimalScheme`].
    pub fn minimal_port_set(
        &self,
        g: &Graph,
        src: RouterId,
        dst: RouterId,
    ) -> crate::scheme::PortSet {
        let mut out = crate::scheme::PortSet::new();
        self.for_each_minimal_port(g, src, dst, |p| out.push(p));
        out
    }

    /// Number of minimal next hops from `src` toward `dst`.
    pub fn minimal_degree(&self, g: &Graph, src: RouterId, dst: RouterId) -> usize {
        let mut v = Vec::new();
        self.minimal_ports(g, src, dst, &mut v);
        v.len()
    }

    /// ECMP port selection: FNV hash of `flow_key` (constant per flow) over
    /// the minimal port set.
    pub fn ecmp_port(&self, g: &Graph, src: RouterId, dst: RouterId, flow_key: u64) -> Option<u16> {
        let mut ports = Vec::new();
        self.minimal_ports(g, src, dst, &mut ports);
        if ports.is_empty() {
            return None;
        }
        let h = fnv1a(flow_key ^ ((src as u64) << 32));
        Some(ports[(h % ports.len() as u64) as usize])
    }

    /// Per-packet spraying: uniform pick keyed by a per-packet nonce.
    pub fn spray_port(&self, g: &Graph, src: RouterId, dst: RouterId, nonce: u64) -> Option<u16> {
        self.ecmp_port(g, src, dst, nonce)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fatpaths_net::topo::{fattree::fat_tree, hyperx::hyperx, slimfly::slim_fly};

    #[test]
    fn distances_match_bfs() {
        let t = slim_fly(5, 1).unwrap();
        let dm = DistanceMatrix::build(&t.graph);
        let d0 = t.graph.bfs(0);
        for v in 0..t.num_routers() as u32 {
            assert_eq!(dm.get(0, v), Some(d0[v as usize]));
        }
    }

    #[test]
    fn sf_has_single_minimal_port_mostly() {
        // Shortest paths fall short (§IV-C1): most SF pairs at distance 2
        // have exactly 1 minimal next hop.
        let t = slim_fly(7, 1).unwrap();
        let dm = DistanceMatrix::build(&t.graph);
        let mut single = 0;
        let mut total = 0;
        for s in 0..t.num_routers() as u32 {
            for d in 0..t.num_routers() as u32 {
                if dm.get(s, d) == Some(2) {
                    total += 1;
                    if dm.minimal_degree(&t.graph, s, d) == 1 {
                        single += 1;
                    }
                }
            }
        }
        assert!(single * 10 > total * 8, "{single}/{total}");
    }

    #[test]
    fn fat_tree_has_many_minimal_ports() {
        // FT inter-pod pairs have k/2 minimal first hops — the diversity
        // ECMP exploits.
        let t = fat_tree(8, 1);
        let dm = DistanceMatrix::build(&t.graph);
        // Edge router 0 (pod 0) → edge router 4 (pod 1).
        assert_eq!(dm.minimal_degree(&t.graph, 0, 4), 4);
    }

    #[test]
    fn ecmp_is_stable_per_flow_and_spreads_across_flows() {
        let t = hyperx(2, 4, 1);
        let dm = DistanceMatrix::build(&t.graph);
        // HX corner pair with 2 minimal ports.
        let (s, d) = (0u32, 5u32);
        assert!(dm.minimal_degree(&t.graph, s, d) >= 2);
        let p1 = dm.ecmp_port(&t.graph, s, d, 42).unwrap();
        assert_eq!(dm.ecmp_port(&t.graph, s, d, 42).unwrap(), p1);
        // Across many flow keys both ports are used.
        let mut seen = std::collections::HashSet::new();
        for k in 0..64u64 {
            seen.insert(dm.ecmp_port(&t.graph, s, d, k).unwrap());
        }
        assert!(seen.len() >= 2);
    }
}
