//! Benchmarks for the max-concurrent-flow solver and worst-case traffic
//! generator behind Fig. 9.

use criterion::{criterion_group, criterion_main, Criterion};
use fatpaths_core::fwd::RoutingTables;
use fatpaths_core::layers::{build_random_layers, LayerConfig};
use fatpaths_mcf::mat::{mat, router_demands, LayeredPaths};
use fatpaths_mcf::worstcase::{worst_case_flows, worst_case_router_matching};
use fatpaths_net::topo::slimfly::slim_fly;
use std::hint::black_box;

fn bench_mcf(c: &mut Criterion) {
    let t = slim_fly(11, 8).unwrap();
    let flows = worst_case_flows(&t, 0.55, 1);
    let demands = router_demands(&flows, |e| t.endpoint_router(e));
    let ls = build_random_layers(&t.graph, &LayerConfig::new(6, 0.6, 2));
    let rt = RoutingTables::build(&t.graph, &ls);
    let mut g = c.benchmark_group("mcf_sf242");
    g.sample_size(10);
    g.bench_function("worst_case_matching", |b| {
        b.iter(|| black_box(worst_case_router_matching(&t.graph, 1)))
    });
    g.bench_function("gk_layered_eps008", |b| {
        b.iter(|| {
            black_box(mat(
                &t.graph,
                &demands,
                &LayeredPaths {
                    base: &t.graph,
                    tables: &rt,
                },
                0.08,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_mcf);
criterion_main!(benches);
