//! Matrix scoring shared by the TE sweep and the baselines experiment:
//! per-edge loads of *any* [`RoutingScheme`] under a router-level traffic
//! matrix, and the achieved throughput they imply.
//!
//! The demand model is equal flowlet split: every commodity spreads
//! evenly over the scheme's endpoint-selectable layers
//! (`0..num_layers()`), and within a hop evenly over the candidate port
//! set — the steady-state expectation of the simulator's flowlet hashing.
//! With unit link capacities the achieved throughput is `1 / max_load`,
//! directly comparable to the `fatpaths-mcf` concurrent-flow upper bound
//! on the same matrix.

use fatpaths_core::scheme::RoutingScheme;
use fatpaths_mcf::RouterDemand;
use fatpaths_net::graph::Graph;

/// Per-edge load (indexed like [`Graph::edge_vec`]) of `scheme` routing
/// `demands` under equal flowlet split. Deterministic: demands are walked
/// in slice order and splits recurse in port order, so accumulation is
/// independent of thread count.
pub fn edge_loads<S: RoutingScheme + ?Sized>(
    scheme: &S,
    base: &Graph,
    demands: &[RouterDemand],
) -> Vec<f64> {
    let edge_index = base.edge_index_map();
    let eids: Vec<Vec<u32>> = (0..base.n() as u32)
        .map(|u| {
            base.neighbors(u)
                .iter()
                .map(|&v| edge_index[&(u.min(v), u.max(v))])
                .collect()
        })
        .collect();
    let mut loads = vec![0.0f64; base.m()];
    let nl = scheme.num_layers().max(1);
    for d in demands {
        if d.src == d.dst {
            continue;
        }
        let share = d.demand / nl as f64;
        for tag in 0..nl {
            spread(
                scheme, base, &eids, tag as u8, d.src, d.dst, share, 0, &mut loads,
            );
        }
    }
    loads
}

/// Recursive equal split along the scheme's forwarding rule: apply the
/// per-hop tag rewrite, divide over candidate ports, recurse. Terminates
/// because schemes are loop-free per layer; the depth cap is defensive.
#[allow(clippy::too_many_arguments)]
fn spread<S: RoutingScheme + ?Sized>(
    scheme: &S,
    base: &Graph,
    eids: &[Vec<u32>],
    tag: u8,
    at: u32,
    dst: u32,
    amount: f64,
    depth: usize,
    loads: &mut [f64],
) {
    if at == dst || depth > base.n() {
        return;
    }
    let tag = scheme.update_layer(tag, at, dst);
    let ports = scheme.candidate_ports(tag, at, dst);
    let ps = ports.as_slice();
    if ps.is_empty() {
        return; // unreachable pair carries no load
    }
    let share = amount / ps.len() as f64;
    for &p in ps {
        loads[eids[at as usize][p as usize] as usize] += share;
        let nb = base.neighbor_at(at, p as u32);
        spread(scheme, base, eids, tag, nb, dst, share, depth + 1, loads);
    }
}

/// The largest per-edge load — the bottleneck under unit capacities.
pub fn peak_load(loads: &[f64]) -> f64 {
    loads.iter().copied().fold(0.0, f64::max)
}

/// Achieved throughput of a load vector under unit capacities: the
/// largest `T` such that scaling every demand by `T` fits every link,
/// i.e. `1 / max_load`. Infinite for an empty/zero matrix.
pub fn achieved_throughput(loads: &[f64]) -> f64 {
    let peak = peak_load(loads);
    if peak <= 0.0 {
        f64::INFINITY
    } else {
        1.0 / peak
    }
}
