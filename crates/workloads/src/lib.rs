//! # fatpaths-workloads
//!
//! Workload model of the FatPaths evaluation (§II-C, §VII-A4):
//!
//! * [`patterns`] — the traffic patterns (uniform, permutation,
//!   off-diagonal, shuffle, stencil, multi-permutation, adversarial);
//! * [`matrices`] — topology-aware adversarial matrices (worst-case
//!   permutation, heavy-hitter skew) for the TE sweep;
//! * [`sizes`] — the 20-point web-search-like flow-size distribution
//!   (mean 1 MiB on [32 KiB, 2 MiB]);
//! * [`arrivals`] — Poisson flow arrivals with warm-up dropping;
//! * [`mapping`] — randomized workload mapping (§III-D);
//! * [`stencil`] — the bulk-synchronous stencil + barrier workload
//!   (Fig. 17).

pub mod arrivals;
pub mod mapping;
pub mod matrices;
pub mod patterns;
pub mod sizes;
pub mod stencil;

pub use arrivals::{bulk_flows, drop_warmup, poisson_flows, FlowSpec, TimePs, SEC_PS};
pub use mapping::{apply_mapping, identity_mapping, random_mapping};
pub use matrices::{matrix_flows, MatrixSpec};
pub use patterns::{adversarial_for, Pattern};
pub use sizes::{FlowSizeDist, KIB, MIB};
pub use stencil::StencilWorkload;
