//! k-shortest-paths comparison baseline (Singla et al., ref. 10; Appendix C-D).
//!
//! Yen's algorithm over unweighted graphs (BFS as the shortest-path
//! subroutine): the `k` shortest *loop-free* paths per pair, over which
//! Jellyfish-style routing spreads traffic. Used as the third layered
//! comparison target of §VI.

use fatpaths_net::graph::{Graph, RouterId, UNREACHABLE};
use rustc_hash::FxHashSet;

/// Computes up to `k` shortest simple paths `src → dst` (each a router
/// sequence including both endpoints), in non-decreasing length order.
pub fn k_shortest_paths(g: &Graph, src: RouterId, dst: RouterId, k: usize) -> Vec<Vec<RouterId>> {
    assert_ne!(src, dst);
    let mut result: Vec<Vec<u32>> = Vec::with_capacity(k);
    let Some(first) = bfs_path(g, src, dst, &FxHashSet::default(), &FxHashSet::default()) else {
        return result;
    };
    result.push(first);
    // Candidate pool: (length, path), deduplicated.
    let mut candidates: Vec<Vec<u32>> = Vec::new();
    let mut seen: FxHashSet<Vec<u32>> = FxHashSet::default();
    while result.len() < k {
        let prev = result.last().unwrap().clone();
        for spur_idx in 0..prev.len() - 1 {
            let spur = prev[spur_idx];
            let root = &prev[..=spur_idx];
            // Edges removed: for every accepted/candidate path sharing this
            // root, the edge it takes out of the spur node.
            let mut removed_edges: FxHashSet<(u32, u32)> = FxHashSet::default();
            for p in result.iter() {
                if p.len() > spur_idx + 1 && p[..=spur_idx] == *root {
                    let (a, b) = (p[spur_idx], p[spur_idx + 1]);
                    removed_edges.insert((a.min(b), a.max(b)));
                }
            }
            // Nodes removed: the root minus the spur (loop-freedom).
            let removed_nodes: FxHashSet<u32> = root[..spur_idx].iter().copied().collect();
            if let Some(tail) = bfs_path(g, spur, dst, &removed_nodes, &removed_edges) {
                let mut path = root[..spur_idx].to_vec();
                path.extend_from_slice(&tail);
                if seen.insert(path.clone()) {
                    candidates.push(path);
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Extract the shortest candidate (stable tie-break by content).
        let best = candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, p)| (p.len(), (*p).clone()))
            .map(|(i, _)| i)
            .unwrap();
        let path = candidates.swap_remove(best);
        result.push(path);
    }
    result
}

/// BFS shortest path avoiding removed nodes/edges.
fn bfs_path(
    g: &Graph,
    src: RouterId,
    dst: RouterId,
    removed_nodes: &FxHashSet<u32>,
    removed_edges: &FxHashSet<(u32, u32)>,
) -> Option<Vec<u32>> {
    if removed_nodes.contains(&src) || removed_nodes.contains(&dst) {
        return None;
    }
    let n = g.n();
    let mut dist = vec![UNREACHABLE; n];
    let mut parent = vec![u32::MAX; n];
    let mut queue = vec![src];
    dist[src as usize] = 0;
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        if u == dst {
            break;
        }
        for &v in g.neighbors(u) {
            if dist[v as usize] != UNREACHABLE
                || removed_nodes.contains(&v)
                || removed_edges.contains(&(u.min(v), u.max(v)))
            {
                continue;
            }
            dist[v as usize] = dist[u as usize] + 1;
            parent[v as usize] = u;
            queue.push(v);
        }
    }
    if dist[dst as usize] == UNREACHABLE {
        return None;
    }
    let mut path = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = parent[cur as usize];
        path.push(cur);
    }
    path.reverse();
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn theta() -> Graph {
        // 0-1 direct; 0-2-1; 0-3-4-1.
        Graph::from_edges(5, &[(0, 1), (0, 2), (2, 1), (0, 3), (3, 4), (4, 1)])
    }

    #[test]
    fn finds_paths_in_length_order() {
        let g = theta();
        let paths = k_shortest_paths(&g, 0, 1, 3);
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0], vec![0, 1]);
        assert_eq!(paths[1], vec![0, 2, 1]);
        assert_eq!(paths[2], vec![0, 3, 4, 1]);
    }

    #[test]
    fn stops_when_exhausted() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let paths = k_shortest_paths(&g, 0, 2, 5);
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn paths_are_simple_and_valid() {
        let t = fatpaths_net::topo::slimfly::slim_fly(5, 1).unwrap();
        let paths = k_shortest_paths(&t.graph, 0, 33, 8);
        assert_eq!(paths.len(), 8);
        let mut lens: Vec<usize> = paths.iter().map(|p| p.len()).collect();
        let sorted = {
            let mut l = lens.clone();
            l.sort_unstable();
            l
        };
        assert_eq!(lens, sorted, "paths not in length order");
        lens.dedup();
        for p in &paths {
            for w in p.windows(2) {
                assert!(t.graph.has_edge(w[0], w[1]));
            }
            let mut q = p.clone();
            q.sort_unstable();
            q.dedup();
            assert_eq!(q.len(), p.len(), "path has a loop");
        }
        // All paths distinct.
        let set: FxHashSet<&Vec<u32>> = paths.iter().collect();
        assert_eq!(set.len(), paths.len());
    }

    #[test]
    fn sf_ksp_needs_longer_paths() {
        // §IV-C1: SF pairs mostly have one shortest path, so k-shortest
        // paths necessarily includes non-minimal ones (k=4 ⇒ beyond lmin).
        let t = fatpaths_net::topo::slimfly::slim_fly(7, 1).unwrap();
        let paths = k_shortest_paths(&t.graph, 0, 60, 4);
        let lmin = paths[0].len();
        assert!(paths.iter().any(|p| p.len() > lmin));
    }
}
