//! Flow-level max-min fluid simulator for huge-scale runs (Fig. 13 at
//! ≈1M endpoints; DESIGN.md §2.3).
//!
//! Each flow owns a fixed path of directed link ids (router links plus the
//! endpoint access links). Rates follow max-min fairness via progressive
//! filling; FCTs derive from the rate trajectory. Two modes:
//!
//! * [`bulk_fcts`] — all flows concurrent, one water-filling pass; the
//!   FCT *distribution shape* is governed by path-collision multiplicity,
//!   which is what Fig. 13's histograms display;
//! * [`FluidSim`] — event-driven arrivals/departures with rate re-solve,
//!   for medium instances and for validating the bulk approximation.

use fatpaths_core::fwd::RoutingTables;
use fatpaths_net::topo::Topology;
use rustc_hash::FxHashMap;

/// Directed-link id space for a topology: `2*edge + dir` for router links,
/// then per-endpoint uplinks and downlinks.
#[derive(Clone, Debug)]
pub struct LinkSpace {
    edge_index: FxHashMap<(u32, u32), u32>,
    m: usize,
    ne: usize,
}

impl LinkSpace {
    /// Builds the id space for `topo`.
    pub fn new(topo: &Topology) -> Self {
        LinkSpace {
            edge_index: topo.graph.edge_index_map(),
            m: topo.graph.m(),
            ne: topo.num_endpoints(),
        }
    }

    /// Total number of directed links.
    pub fn len(&self) -> usize {
        2 * self.m + 2 * self.ne
    }

    /// True iff the space is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Directed router-link id for hop `u → v`.
    pub fn router_link(&self, u: u32, v: u32) -> u32 {
        let e = self.edge_index[&(u.min(v), u.max(v))];
        2 * e + u32::from(u > v)
    }

    /// Uplink id of endpoint `e`.
    pub fn uplink(&self, e: u32) -> u32 {
        (2 * self.m) as u32 + e
    }

    /// Downlink id of endpoint `e`.
    pub fn downlink(&self, e: u32) -> u32 {
        (2 * self.m + self.ne) as u32 + e
    }

    /// Full link-id path for an endpoint flow along a router path.
    pub fn flow_path(&self, src_ep: u32, dst_ep: u32, routers: &[u32]) -> Vec<u32> {
        let mut path = Vec::with_capacity(routers.len() + 1);
        path.push(self.uplink(src_ep));
        for w in routers.windows(2) {
            path.push(self.router_link(w[0], w[1]));
        }
        path.push(self.downlink(dst_ep));
        path
    }
}

/// Progressive-filling max-min fair rates. `paths[i]` lists the directed
/// link ids flow `i` traverses; every link has capacity `cap`.
/// Returns per-flow rates (same unit as `cap`).
pub fn max_min_rates(paths: &[Vec<u32>], n_links: usize, cap: f64) -> Vec<f64> {
    max_min_rates_approx(paths, n_links, cap, 1e-9)
}

/// [`max_min_rates`] with a freezing tolerance: links whose fair share is
/// within `(1+tol)` of the round's level freeze together, trading ≤ `tol`
/// rate accuracy for far fewer rounds on million-flow instances.
pub fn max_min_rates_approx(paths: &[Vec<u32>], n_links: usize, cap: f64, tol: f64) -> Vec<f64> {
    let nf = paths.len();
    let mut rate = vec![0.0f64; nf];
    let mut frozen = vec![false; nf];
    let mut cap_left = vec![cap; n_links];
    let mut active = vec![0u32; n_links];
    let mut flows_on: Vec<Vec<u32>> = vec![Vec::new(); n_links];
    for (i, p) in paths.iter().enumerate() {
        for &l in p {
            active[l as usize] += 1;
            flows_on[l as usize].push(i as u32);
        }
    }
    let mut remaining: usize = paths.iter().filter(|p| !p.is_empty()).count();
    // Flows with no links are unconstrained; report capacity.
    for (i, p) in paths.iter().enumerate() {
        if p.is_empty() {
            rate[i] = cap;
            frozen[i] = true;
        }
    }
    while remaining > 0 {
        // Current fill level: the tightest link's fair share.
        let mut level = f64::INFINITY;
        for l in 0..n_links {
            if active[l] > 0 {
                level = level.min(cap_left[l] / active[l] as f64);
            }
        }
        debug_assert!(level.is_finite());
        // Freeze all flows through links at (or within tolerance of) the level.
        let eps = level * tol + 1e-18;
        let mut froze_any = false;
        for l in 0..n_links {
            if active[l] == 0 || cap_left[l] / active[l] as f64 > level + eps {
                continue;
            }
            let flows = std::mem::take(&mut flows_on[l]);
            for &fi in &flows {
                if frozen[fi as usize] {
                    continue;
                }
                frozen[fi as usize] = true;
                froze_any = true;
                remaining -= 1;
                rate[fi as usize] = level;
                for &l2 in &paths[fi as usize] {
                    cap_left[l2 as usize] -= level;
                    active[l2 as usize] -= 1;
                }
            }
            flows_on[l] = flows;
        }
        debug_assert!(froze_any, "water-filling must make progress");
        if !froze_any {
            break;
        }
    }
    rate
}

/// One-shot FCTs: all flows concurrent for their whole lifetime (the
/// conservative bulk approximation used at 1M endpoints). `cap` in
/// bytes/s; sizes in bytes; FCTs in seconds.
pub fn bulk_fcts(paths: &[Vec<u32>], sizes: &[u64], n_links: usize, cap: f64) -> Vec<f64> {
    let tol = if paths.len() > 100_000 { 0.02 } else { 1e-9 };
    let rates = max_min_rates_approx(paths, n_links, cap, tol);
    sizes
        .iter()
        .zip(&rates)
        .map(|(&s, &r)| s as f64 / r.max(1e-9))
        .collect()
}

/// Event-driven fluid simulation with arrivals and departures.
pub struct FluidSim {
    paths: Vec<Vec<u32>>,
    sizes: Vec<f64>,
    starts: Vec<f64>,
    n_links: usize,
    cap: f64,
}

impl FluidSim {
    /// Creates a fluid simulation over the given flows.
    pub fn new(
        paths: Vec<Vec<u32>>,
        sizes: Vec<u64>,
        starts: Vec<f64>,
        n_links: usize,
        cap: f64,
    ) -> Self {
        assert_eq!(paths.len(), sizes.len());
        assert_eq!(paths.len(), starts.len());
        FluidSim {
            paths,
            sizes: sizes.into_iter().map(|s| s as f64).collect(),
            starts,
            n_links,
            cap,
        }
    }

    /// Runs to completion; returns per-flow FCT in seconds.
    pub fn run(self) -> Vec<f64> {
        let nf = self.paths.len();
        let mut remaining = self.sizes.clone();
        let mut finish = vec![0.0f64; nf];
        let mut order: Vec<u32> = (0..nf as u32).collect();
        order.sort_by(|&a, &b| self.starts[a as usize].total_cmp(&self.starts[b as usize]));
        let mut arrived = 0usize;
        let mut active: Vec<u32> = Vec::new();
        let mut t = 0.0f64;
        loop {
            // Rates for the currently active set.
            let act_paths: Vec<Vec<u32>> = active
                .iter()
                .map(|&i| self.paths[i as usize].clone())
                .collect();
            let rates = max_min_rates(&act_paths, self.n_links, self.cap);
            // Next event: earliest completion vs next arrival.
            let mut dt_complete = f64::INFINITY;
            for (k, &i) in active.iter().enumerate() {
                if rates[k] > 0.0 {
                    dt_complete = dt_complete.min(remaining[i as usize] / rates[k]);
                }
            }
            let next_arrival = if arrived < nf {
                self.starts[order[arrived] as usize]
            } else {
                f64::INFINITY
            };
            if dt_complete.is_infinite() && next_arrival.is_infinite() {
                break;
            }
            if t + dt_complete <= next_arrival {
                // Advance to the completion.
                t += dt_complete;
                let mut still = Vec::with_capacity(active.len());
                for (k, &i) in active.iter().enumerate() {
                    remaining[i as usize] -= rates[k] * dt_complete;
                    if remaining[i as usize] <= 1e-6 {
                        finish[i as usize] = t;
                    } else {
                        still.push(i);
                    }
                }
                active = still;
            } else {
                // Advance to the arrival.
                let dt = next_arrival - t;
                for (k, &i) in active.iter().enumerate() {
                    remaining[i as usize] -= rates[k] * dt;
                }
                t = next_arrival;
                while arrived < nf && self.starts[order[arrived] as usize] <= t {
                    active.push(order[arrived]);
                    arrived += 1;
                }
            }
        }
        (0..nf).map(|i| finish[i] - self.starts[i]).collect()
    }
}

/// Convenience: per-flow link paths under layered routing, choosing layer
/// `hash(flow) % n_layers` per flow (the time-average of flowlet balancing).
pub fn layered_paths_for_flows(
    topo: &Topology,
    tables: &RoutingTables,
    links: &LinkSpace,
    flows: &[(u32, u32)],
) -> Vec<Vec<u32>> {
    flows
        .iter()
        .enumerate()
        .map(|(i, &(s, d))| {
            let (rs, rd) = (topo.endpoint_router(s), topo.endpoint_router(d));
            if rs == rd {
                return vec![links.uplink(s), links.downlink(d)];
            }
            let layer =
                (fatpaths_core::fwd::fnv1a(i as u64 ^ 0x77) % tables.n_layers() as u64) as usize;
            let routers = tables
                .path(&topo.graph, layer, rs, rd)
                .or_else(|| tables.path(&topo.graph, 0, rs, rd))
                .expect("connected");
            links.flow_path(s, d, &routers)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flow_gets_capacity() {
        let rates = max_min_rates(&[vec![0, 1]], 2, 10.0);
        assert_eq!(rates, vec![10.0]);
    }

    #[test]
    fn shared_link_splits_fairly() {
        let rates = max_min_rates(&[vec![0], vec![0], vec![0, 1]], 2, 9.0);
        assert!((rates[0] - 3.0).abs() < 1e-9);
        assert!((rates[1] - 3.0).abs() < 1e-9);
        assert!((rates[2] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn two_bottlenecks_symmetric() {
        // A on link0, B on link1, C on both, uniform cap 4: every link has
        // 2 flows at fair share 2, so max-min gives everyone 2.
        let rates = max_min_rates(&[vec![0], vec![1], vec![0, 1]], 2, 4.0);
        assert!(rates.iter().all(|&r| (r - 2.0).abs() < 1e-9), "{rates:?}");
    }

    #[test]
    fn water_fills_in_stages() {
        // link0 carries {A, C, D}, link1 carries {B, C}. Uniform cap 6:
        // stage 1 freezes link0's flows at 2; stage 2 lifts B to 6−2 = 4.
        let paths = vec![vec![0], vec![1], vec![0, 1], vec![0]];
        let rates = max_min_rates(&paths, 2, 6.0);
        assert!((rates[0] - 2.0).abs() < 1e-9, "{rates:?}");
        assert!((rates[2] - 2.0).abs() < 1e-9, "{rates:?}");
        assert!((rates[3] - 2.0).abs() < 1e-9, "{rates:?}");
        assert!((rates[1] - 4.0).abs() < 1e-9, "{rates:?}");
    }

    #[test]
    fn bulk_fcts_scale_with_collisions() {
        // Two flows sharing one link take twice as long as a lone flow.
        let lone = bulk_fcts(&[vec![0]], &[100], 1, 10.0);
        let pair = bulk_fcts(&[vec![0], vec![0]], &[100, 100], 1, 10.0);
        assert!((lone[0] - 10.0).abs() < 1e-9);
        assert!((pair[0] - 20.0).abs() < 1e-9);
    }

    #[test]
    fn event_driven_matches_analytic_sequence() {
        // Flow A starts at t=0 (size 10, cap 10); flow B at t=0.5 shares
        // the link. A: 5 done by 0.5, then rate 5 → 1 more second for the
        // remaining 5 ⇒ finish 1.5, FCT 1.5. B: gets 5 for 1s → 5 of 10 at
        // 1.5, then full 10 ⇒ finishes at 2.0, FCT 1.5.
        let sim = FluidSim::new(
            vec![vec![0], vec![0]],
            vec![10, 10],
            vec![0.0, 0.5],
            1,
            10.0,
        );
        let fct = sim.run();
        assert!((fct[0] - 1.5).abs() < 1e-6, "{:?}", fct);
        assert!((fct[1] - 1.5).abs() < 1e-6, "{:?}", fct);
    }

    #[test]
    fn link_space_ids_disjoint() {
        let t = fatpaths_net::topo::slimfly::slim_fly(5, 2).unwrap();
        let ls = LinkSpace::new(&t);
        let up = ls.uplink(0);
        let down = ls.downlink(0);
        let rl = ls.router_link(0, t.graph.neighbors(0)[0]);
        assert!(rl < up && up < down);
        assert!((down as usize) < ls.len());
        // Directionality.
        let v = t.graph.neighbors(0)[0];
        assert_ne!(ls.router_link(0, v), ls.router_link(v, 0));
    }
}
