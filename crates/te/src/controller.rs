//! The slow TE control loop: selective repair of negotiated trees.
//!
//! When fault or churn events invalidate links, only the `(layer, dst)`
//! trees that actually *cross* an invalidated link need rerouting — every
//! other tree's rows remain valid verbatim. The controller finds exactly
//! those trees (a tree uses edge `(a, b)` iff `a`'s row points at `b` or
//! vice versa), rebuilds them on the degraded layer subgraph **under the
//! negotiated price vector** (so reroutes respect the congestion picture
//! the negotiation settled on, not plain hop counts), and emits the
//! changed rows as a [`RouteRepair`] overlay with the same semantics as
//! the static tables' repair: whole trees are replaced, never mixed, so
//! the overlay stays loop-free.
//!
//! The controller is stateful across ticks: per-layer rebuilds are
//! cached keyed on the layer's down-link signature, so a rolling-churn
//! sequence that leaves a layer's failures unchanged pays nothing for
//! that layer on the next tick. [`TeScheme`]'s `repair_routes` constructs a
//! fresh controller per call (the simulator's `RepairTick` path is
//! stateless and deterministic either way); hold one explicitly to get
//! the incremental behavior.

use crate::negotiate::{weighted_tree, TeScheme};
use fatpaths_core::fwd::NO_PORT;
use fatpaths_core::repair::{DownLinks, RouteRepair};
use fatpaths_core::scheme::PortSet;
use fatpaths_net::graph::Graph;
use rayon::prelude::*;
use rustc_hash::FxHashMap;

/// Incremental repair driver for a [`TeScheme`]. See the module docs.
pub struct TeController<'a> {
    scheme: &'a TeScheme,
    /// Per-layer down-link signature of the last repair (sorted).
    sigs: Vec<Vec<(u32, u32)>>,
    /// Per-layer rebuilt rows from the last repair: `dst → ports`.
    rows: Vec<FxHashMap<u32, Vec<u16>>>,
    ticks: u64,
    rebuilt_trees: u64,
}

impl<'a> TeController<'a> {
    /// A controller with an empty rebuild cache.
    pub fn new(scheme: &'a TeScheme) -> Self {
        let nl = scheme.tables.len();
        TeController {
            scheme,
            sigs: vec![Vec::new(); nl],
            rows: vec![FxHashMap::default(); nl],
            ticks: 0,
            rebuilt_trees: 0,
        }
    }

    /// Repair ticks served so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Total `(layer, dst)` trees rebuilt (cache hits excluded).
    pub fn rebuilt_trees(&self) -> u64 {
        self.rebuilt_trees
    }

    /// Number of matrix entries whose negotiated routes cross any of the
    /// given down links — the demand-side blast radius of an event set.
    pub fn affected_demands(&self, base: &Graph, down: &DownLinks) -> usize {
        let nl = self.scheme.tables.len();
        self.scheme
            .demands
            .iter()
            .filter(|d| {
                (0..nl).any(|l| {
                    self.scheme
                        .path(base, l, d.src, d.dst)
                        .is_some_and(|p| p.windows(2).any(|w| down.contains(w[0], w[1])))
                })
            })
            .count()
    }

    /// Computes the repair overlay for the *current* down set (the full
    /// set, as the simulator hands to `repair_routes` — not a delta).
    /// Trees whose per-layer signature is unchanged since the last call
    /// reuse their cached rebuilds.
    pub fn repair(&mut self, base: &Graph, down: &DownLinks) -> RouteRepair {
        self.ticks += 1;
        let mut rep = RouteRepair::none();
        let scheme = self.scheme;
        let nr = scheme.nr;
        let nl = scheme.tables.len();
        if down.is_empty() {
            for l in 0..nl {
                self.sigs[l].clear();
                self.rows[l].clear();
            }
            return rep;
        }
        // (src, dst) pairs whose layer-0 row got rewritten; sparse-layer
        // build-time gaps must shadow them (below), like the static
        // tables' repair.
        let mut layer0_touched: Vec<(u32, u32)> = Vec::new();
        // Ascending layers: sparse-layer fallbacks resolve against the
        // already-assembled layer-0 overlay.
        for l in 0..nl {
            let lg = scheme.layers.layer(l);
            let mut layer_down: Vec<(u32, u32)> =
                down.iter().filter(|&(u, v)| lg.has_edge(u, v)).collect();
            layer_down.sort_unstable();
            if layer_down.is_empty() {
                self.sigs[l].clear();
                self.rows[l].clear();
                continue;
            }
            if self.sigs[l] != layer_down {
                let mask = DownLinks::from_links(&layer_down);
                let table = &scheme.tables[l];
                // A tree is affected iff one of its rows crosses a down
                // link — i.e., the link's endpoints point at each other.
                let affected: Vec<u32> = (0..nr as u32)
                    .filter(|&dst| {
                        layer_down.iter().any(|&(a, b)| {
                            let pa = base.port_of(a, b).expect("down link is a base edge") as u16;
                            let pb = base.port_of(b, a).expect("down link is a base edge") as u16;
                            table[dst as usize * nr + a as usize] == pa
                                || table[dst as usize * nr + b as usize] == pb
                        })
                    })
                    .collect();
                let built: Vec<(u32, Vec<u16>)> = affected
                    .par_iter()
                    .map(|&dst| {
                        let mut row = vec![NO_PORT; nr];
                        weighted_tree(
                            base,
                            lg,
                            &scheme.layer_eids[l],
                            &scheme.costs,
                            Some(&mask),
                            l as u32,
                            dst,
                            &mut row,
                        );
                        (dst, row)
                    })
                    .collect();
                self.rebuilt_trees += built.len() as u64;
                self.rows[l] = built.into_iter().collect();
                self.sigs[l] = layer_down;
            }
            // Emit every row that differs from the healthy tree — the
            // effective forwarding becomes exactly the rebuilt tree, so
            // the overlay cannot mix trees and stays loop-free.
            let mut dsts: Vec<u32> = self.rows[l].keys().copied().collect();
            dsts.sort_unstable();
            for dst in dsts {
                let new_row = &self.rows[l][&dst];
                for src in 0..nr as u32 {
                    if src == dst {
                        continue;
                    }
                    let op = scheme.tables[l][dst as usize * nr + src as usize];
                    let np = new_row[src as usize];
                    if np == op {
                        continue;
                    }
                    let entry = if np != NO_PORT {
                        PortSet::single(np)
                    } else if l == 0 {
                        // Layer 0 is the complete layer: unreachable here
                        // means disconnected in the degraded base.
                        PortSet::new()
                    } else {
                        // Sparse layer lost the pair: resolve the layer-0
                        // fallback now so the overlay stores the final
                        // decision.
                        layer0_resolution(scheme, &rep, src, dst)
                    };
                    if l == 0 {
                        layer0_touched.push((src, dst));
                    }
                    rep.insert(l as u8, src, dst, entry);
                }
            }
        }
        // Pairs a sparse layer never reached at build time forward
        // through candidate_ports' internal layer-0 fallback, which reads
        // the original table — shadow those keys wherever layer 0 was
        // rewritten so the fallback cannot resurrect a dead port.
        for &(src, dst) in &layer0_touched {
            let repaired = rep
                .lookup(0, src, dst)
                .expect("touched layer-0 rows have entries")
                .clone();
            for l in 1..nl {
                if scheme.tables[l][dst as usize * nr + src as usize] == NO_PORT
                    && rep.lookup(l as u8, src, dst).is_none()
                {
                    rep.insert(l as u8, src, dst, repaired.clone());
                }
            }
        }
        rep
    }
}

/// The repaired layer-0 route for `(src, dst)`: the overlay row if layer
/// 0 was rewritten there, else the healthy negotiated entry.
fn layer0_resolution(scheme: &TeScheme, rep: &RouteRepair, src: u32, dst: u32) -> PortSet {
    if let Some(e) = rep.lookup(0, src, dst) {
        return e.clone();
    }
    match scheme.next_port(0, src, dst) {
        Some(p) => PortSet::single(p),
        None => PortSet::new(),
    }
}
