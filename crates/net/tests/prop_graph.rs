//! Property-based tests for the graph substrate and randomized topology
//! generators.

use fatpaths_net::graph::{Graph, UNREACHABLE};
use fatpaths_net::topo::jellyfish::random_regular_edges;
use fatpaths_net::topo::xpander::xpander;
use proptest::prelude::*;

/// Random edge list over `n` routers (may be disconnected).
fn arb_edges(n: u32) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec(
        (0..n, 0..n).prop_filter("no loops", |(u, v)| u != v),
        1..200,
    )
}

proptest! {
    #[test]
    fn adjacency_is_symmetric(edges in arb_edges(40)) {
        let g = Graph::from_edges(40, &edges);
        for u in 0..40u32 {
            for &v in g.neighbors(u) {
                prop_assert!(g.has_edge(v, u), "asymmetric edge ({u},{v})");
            }
        }
    }

    #[test]
    fn ports_roundtrip(edges in arb_edges(40)) {
        let g = Graph::from_edges(40, &edges);
        for u in 0..40u32 {
            for port in 0..g.degree(u) as u32 {
                let v = g.neighbor_at(u, port);
                prop_assert_eq!(g.port_of(u, v), Some(port));
            }
        }
    }

    #[test]
    fn bfs_satisfies_triangle_inequality(edges in arb_edges(30)) {
        // d(s,t) ≤ d(s,m) + d(m,t) for all reachable triples via one probe m.
        let g = Graph::from_edges(30, &edges);
        let ds = g.bfs(0);
        let dm = g.bfs(7);
        for t in 0..30usize {
            if ds[7] != UNREACHABLE && dm[t] != UNREACHABLE {
                prop_assert!(ds[t] != UNREACHABLE);
                prop_assert!(ds[t] as u64 <= ds[7] as u64 + dm[t] as u64);
            }
        }
    }

    #[test]
    fn bfs_neighbors_differ_by_at_most_one(edges in arb_edges(30)) {
        let g = Graph::from_edges(30, &edges);
        let d = g.bfs(0);
        for (u, v) in g.edges() {
            let (du, dv) = (d[u as usize], d[v as usize]);
            if du != UNREACHABLE && dv != UNREACHABLE {
                prop_assert!(du.abs_diff(dv) <= 1, "BFS dist jump across edge");
            }
        }
    }

    #[test]
    fn jellyfish_always_regular_connected(
        n in 10usize..60,
        k in 3usize..8,
        seed in 0u64..50,
    ) {
        prop_assume!(k < n && (n * k) % 2 == 0);
        let edges = random_regular_edges(n, k, seed);
        let g = Graph::from_edges(n, &edges);
        prop_assert!(g.is_regular());
        prop_assert_eq!(g.degree(0), k);
        prop_assert!(g.is_connected());
    }

    #[test]
    fn xpander_structure(k in 4u32..10, seed in 0u64..20) {
        let t = xpander(k, k, k / 2, seed);
        prop_assert_eq!(t.num_routers() as u32, k * (k + 1));
        prop_assert!(t.graph.is_regular());
        prop_assert_eq!(t.network_radix() as u32, k);
        prop_assert!(t.graph.is_connected());
    }
}
