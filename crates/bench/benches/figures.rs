//! End-to-end figure-regeneration benchmarks: one entry per paper artifact
//! family, at miniature scale, so regressions in any pipeline stage
//! (topology → layers → tables → sim → stats) show up in `cargo bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use fatpaths_core::fwd::RoutingTables;
use fatpaths_core::layers::{build_random_layers, LayerConfig};
use fatpaths_diversity::cdp::{cdp_with, CdpScratch, EdgeIds};
use fatpaths_diversity::collisions::collision_histogram;
use fatpaths_diversity::interference::sample_pi;
use fatpaths_mcf::mat::{mat, router_demands, LayeredPaths};
use fatpaths_mcf::worstcase::worst_case_flows;
use fatpaths_net::topo::slimfly::slim_fly;
use fatpaths_sim::{LoadBalancing, SimConfig, Simulator};
use fatpaths_workloads::arrivals::{poisson_flows, FlowSpec};
use fatpaths_workloads::patterns::Pattern;
use fatpaths_workloads::sizes::FlowSizeDist;
use std::hint::black_box;

fn bench_figure_pipelines(c: &mut Criterion) {
    let t = slim_fly(7, 5).unwrap();
    let eids = EdgeIds::new(&t.graph);
    let mut g = c.benchmark_group("figure_pipelines_sf98");
    g.sample_size(10);

    // Fig. 4 pipeline: pattern → mapping → collision histogram.
    g.bench_function("fig4_collisions", |b| {
        b.iter(|| {
            let pairs = Pattern::stencil_small().flows(t.num_endpoints() as u64, 1);
            let rf: Vec<(u32, u32)> = pairs
                .iter()
                .map(|&(s, d)| (t.endpoint_router(s), t.endpoint_router(d)))
                .collect();
            black_box(collision_histogram(&rf))
        })
    });

    // Fig. 7 pipeline: sampled CDP at l = 3.
    g.bench_function("fig7_cdp_sample", |b| {
        b.iter(|| {
            let mut s = CdpScratch::default();
            let mut acc = 0u32;
            for i in 0..32u32 {
                acc += cdp_with(&t.graph, &eids, &[i], &[i + 49], 3, &mut s);
            }
            black_box(acc)
        })
    });

    // Fig. 8 pipeline: sampled PI.
    g.bench_function("fig8_pi_sample", |b| {
        b.iter(|| black_box(sample_pi(&t.graph, &eids, 3, 32, 5)))
    });

    // Fig. 9 pipeline: worst-case traffic → GK solver.
    g.bench_function("fig9_mat", |b| {
        let flows = worst_case_flows(&t, 0.55, 1);
        let demands = router_demands(&flows, |e| t.endpoint_router(e));
        let ls = build_random_layers(&t.graph, &LayerConfig::new(4, 0.6, 1));
        let rt = RoutingTables::build(&t.graph, &ls);
        b.iter(|| {
            black_box(mat(
                &t.graph,
                &demands,
                &LayeredPaths {
                    base: &t.graph,
                    tables: &rt,
                },
                0.1,
            ))
        })
    });

    // Fig. 2 pipeline: Poisson workload → NDP sim → per-size stats.
    g.bench_function("fig2_sim_slice", |b| {
        let ls = build_random_layers(&t.graph, &LayerConfig::new(4, 0.6, 1));
        let rt = RoutingTables::build(&t.graph, &ls);
        let pairs = Pattern::Permutation.flows(t.num_endpoints() as u64, 2);
        let dist = FlowSizeDist::web_search();
        let flows: Vec<FlowSpec> = poisson_flows(&pairs, 150.0, 0.002, &dist, 3);
        b.iter(|| {
            let mut sim = Simulator::new(
                &t,
                &rt,
                SimConfig {
                    lb: LoadBalancing::FatPathsLayers,
                    ..SimConfig::default()
                },
            );
            sim.add_flows(&flows);
            let res = sim.run();
            black_box(fatpaths_sim::metrics::throughput_by_size(&res))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_figure_pipelines);
criterion_main!(benches);
