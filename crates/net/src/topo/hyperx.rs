//! Regular HyperX / Hamming graph topology (Ahn et al., SC'09).
//!
//! Routers are points of an `L`-dimensional array with side `S`; two routers
//! are linked iff they differ in exactly one coordinate (each 1-D line is a
//! clique). This generalizes Flattened Butterflies; the paper uses regular
//! `(L, S, K=1, p)` instances with `L ∈ {2, 3}` (Appendix A):
//! `Nr = S^L`, `k' = L·(S−1)`, `D = L`, `p = ⌈k'/L⌉`.

use super::{LinkClass, TopoKind, Topology};

/// Builds a regular HyperX with `dims` dimensions of side `side` and `p`
/// endpoints per router. Dimension-0 links are classed short (same chassis
/// row); higher dimensions long.
pub fn hyperx(dims: u32, side: u32, p: u32) -> Topology {
    assert!(dims >= 1 && side >= 2);
    let nr = (side as u64).pow(dims) as usize;
    assert!(nr <= u32::MAX as usize, "HyperX too large");
    let mut edges = Vec::new();
    // Stride of dimension d is side^d; vertices with equal coordinates in
    // all other dimensions form a clique along d.
    for d in 0..dims {
        let stride = (side as u64).pow(d) as u32;
        let class = if d == 0 {
            LinkClass::Short
        } else {
            LinkClass::Long
        };
        for v in 0..nr as u32 {
            let coord = (v / stride) % side;
            for c2 in (coord + 1)..side {
                let u = v + (c2 - coord) * stride;
                edges.push((v, u, class));
            }
        }
    }
    let mut topo = Topology::assemble(
        TopoKind::HyperX,
        format!("HX{dims}(S={side},p={p})"),
        nr,
        edges,
        Topology::uniform_concentration(nr, p),
        dims,
    );
    // Maintenance domains: dimension-0 rows (stride-1 cliques — the
    // same-chassis-row grouping the short link class already encodes).
    topo.domains = (0..nr as u32 / side)
        .map(|row| row * side..(row + 1) * side)
        .collect();
    debug_assert_eq!(topo.network_radix() as u32, dims * (side - 1));
    topo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamming_counts() {
        let t = hyperx(2, 4, 2);
        assert_eq!(t.num_routers(), 16);
        assert_eq!(t.network_radix(), 2 * 3);
        assert!(t.graph.is_regular());
        let (d, _) = t.graph.diameter_apl();
        assert_eq!(d, 2);
    }

    #[test]
    fn three_dims_diameter_three() {
        let t = hyperx(3, 4, 2);
        assert_eq!(t.num_routers(), 64);
        assert_eq!(t.network_radix(), 9);
        let (d, _) = t.graph.diameter_apl();
        assert_eq!(d, 3);
    }

    #[test]
    fn paper_config_s11() {
        // Table IV: HX with k'=30, Nr=1331 (S=11, L=3), N=13310 (p=10).
        let t = hyperx(3, 11, 10);
        assert_eq!(t.num_routers(), 1331);
        assert_eq!(t.network_radix(), 30);
        assert_eq!(t.num_endpoints(), 13310);
    }

    #[test]
    fn minimal_path_diversity_of_hamming_graph() {
        // Two routers differing in 2 coordinates have exactly 2 shortest
        // paths (via either intermediate corner) — the property §IV-C1
        // highlights for HX.
        let t = hyperx(2, 4, 1);
        let g = &t.graph;
        // routers 0=(0,0) and 5=(1,1): corners 1=(1,0) and 4=(0,1).
        assert!(g.has_edge(0, 1) && g.has_edge(1, 5));
        assert!(g.has_edge(0, 4) && g.has_edge(4, 5));
        assert!(!g.has_edge(0, 5));
    }
}
