//! The "purified" receiver-driven transport (§III-C), derived from NDP
//! (Handley et al., SIGCOMM'17):
//!
//! * senders push the first window at line rate (no probing);
//! * congested router queues **trim payloads** — headers always arrive, so
//!   the receiver has complete congestion information;
//! * trimmed headers and retransmissions travel in **priority queues**;
//! * the receiver **pulls** further packets, paced at its access-link
//!   rate, and — the FatPaths addition — requests a **layer change** when
//!   trims reveal congestion on the current layer (§V-F), providing the
//!   flowlet-elasticity that implements LetFlow adaptivity.
//!
//! Sharding note: handlers touch only the flow half that lives on the
//! executing shard — data arrivals the [`RxFlow`](crate::shard::RxFlow),
//! control arrivals the [`TxFlow`](crate::shard::TxFlow). The receiver
//! acks *every* data arrival (duplicates included) so the sender can
//! prove completion from its own ack bitmap without ever reading the
//! receiver's state across the shard boundary.

use crate::config::{AdaptiveMode, LoadBalancing, Transport};
use crate::engine::{EvKind, PktKind, TimePs};
use crate::shard::{pop_front, Ctx, Shard};
use fatpaths_core::fwd::fnv1a;
use fatpaths_core::scheme::RoutingScheme;
use fatpaths_telemetry::SpanKind;

/// Fixed NDP sender retransmission timeout (a rare safety net: payload
/// trimming means losses are announced, not inferred).
const NDP_RTO: TimePs = 2_000_000_000; // 2 ms

impl Shard {
    pub(crate) fn ndp_start<R: RoutingScheme + ?Sized>(
        &mut self,
        cx: &Ctx<R>,
        flow: u32,
        initial_window: u32,
    ) {
        let ti = cx.tx_idx(flow);
        let n = cx.meta(flow).num_pkts.min(initial_window);
        for _ in 0..n {
            let seq = self.tx[ti].next_new;
            self.tx[ti].next_new += 1;
            self.send_data(cx, flow, seq, false);
        }
        self.ndp_arm_rto(cx, flow);
    }

    pub(crate) fn ndp_on_arrive<R: RoutingScheme + ?Sized>(
        &mut self,
        cx: &Ctx<R>,
        ep: u32,
        pid: u32,
    ) {
        let pkt = *self.packets.get(pid);
        self.packets.release(pid);
        let flow = pkt.flow();
        match pkt.kind() {
            PktKind::Data => {
                debug_assert_eq!(ep, pkt.dst_ep);
                let ri = cx.rx_idx(flow);
                self.rx[ri].rx_last_layer = pkt.layer;
                self.rx[ri].last_nonce = pkt.nonce;
                if pkt.trimmed() {
                    // Header-only arrival: the payload was cut. Record the
                    // congestion, suggest a different layer, request a
                    // retransmission (NACK) and schedule a pull credit.
                    let nl = cx.n_layers as u64;
                    let f = &mut self.rx[ri];
                    f.trims += 1;
                    if nl > 1 {
                        let pick = fnv1a(((flow as u64) << 24) ^ 0xBEEF ^ f.trims as u64) % nl;
                        f.rx_suggest = pick as u8;
                    }
                    let suggest = f.rx_suggest;
                    self.span_once(flow, SpanKind::FirstTrim, pkt.seq, 0);
                    self.send_control(cx, flow, PktKind::Nack, pkt.seq, false, suggest);
                    self.ndp_queue_pull(cx, flow);
                } else {
                    let newly = self.rx[ri].mark_received(pkt.seq);
                    let done = self.rx[ri].rcv_count == cx.meta(flow).num_pkts;
                    // Ack every arrival, duplicates included: the sender's
                    // completion proof is its own ack bitmap, so a lost ack
                    // must be replaced by the retransmission's ack.
                    let suggest = self.rx[ri].rx_suggest;
                    self.send_control(cx, flow, PktKind::Ack, pkt.seq, false, suggest);
                    if done {
                        self.complete_flow(cx, flow);
                    } else if newly {
                        self.ndp_queue_pull(cx, flow);
                    }
                }
            }
            PktKind::Ack => {
                // Sender side: per-packet ack. Adopt the receiver's layer
                // suggestion and keep the safety timer fresh.
                let ti = cx.tx_idx(flow);
                if self.tx[ti].aborted {
                    return;
                }
                self.reset_dead_rtos(cx, flow);
                self.ndp_adopt_suggestion(cx, flow, pkt.suggest_layer);
                let f = &mut self.tx[ti];
                f.mark_acked(pkt.seq);
                if pkt.seq >= f.cum_ack {
                    f.cum_ack = pkt.seq + 1;
                }
                self.ndp_arm_rto(cx, flow);
            }
            PktKind::Nack => {
                let ti = cx.tx_idx(flow);
                if self.tx[ti].aborted {
                    return;
                }
                self.reset_dead_rtos(cx, flow);
                self.ndp_adopt_suggestion(cx, flow, pkt.suggest_layer);
                let f = &mut self.tx[ti];
                f.retx_count += 1;
                f.retxq.push(pkt.seq);
                self.ndp_arm_rto(cx, flow);
            }
            PktKind::Pull => {
                if self.tx[cx.tx_idx(flow)].aborted {
                    return;
                }
                self.reset_dead_rtos(cx, flow);
                self.ndp_adopt_suggestion(cx, flow, pkt.suggest_layer);
                self.ndp_send_next(cx, flow);
                self.ndp_arm_rto(cx, flow);
            }
        }
    }

    fn ndp_adopt_suggestion<R: RoutingScheme + ?Sized>(
        &mut self,
        cx: &Ctx<R>,
        flow: u32,
        suggest: u8,
    ) {
        if suggest != 0xff {
            let ti = cx.tx_idx(flow);
            let old = self.tx[ti].layer;
            self.tx[ti].layer = suggest;
            if old != suggest {
                self.span(flow, SpanKind::LayerSwitch, old as u32, suggest as u32);
            }
        }
    }

    /// One pull credit = one packet: retransmissions first, then new data.
    fn ndp_send_next<R: RoutingScheme + ?Sized>(&mut self, cx: &Ctx<R>, flow: u32) {
        let ti = cx.tx_idx(flow);
        if let Some(seq) = pop_front(&mut self.tx[ti].retxq) {
            self.send_data(cx, flow, seq, true);
        } else if self.tx[ti].next_new < cx.meta(flow).num_pkts {
            let seq = self.tx[ti].next_new;
            self.tx[ti].next_new += 1;
            self.send_data(cx, flow, seq, false);
        }
    }

    /// Queues a pull credit toward the sender, paced at the receiver's
    /// access-link rate (one full-size packet interval per pull). The
    /// pull queue lives on the receiving endpoint's shard.
    fn ndp_queue_pull<R: RoutingScheme + ?Sized>(&mut self, cx: &Ctx<R>, flow: u32) {
        let ep = cx.meta(flow).dst_ep;
        let li = cx.ep_idx(ep);
        let was_empty = self.pull_push(li, flow);
        let at = self.now.max(self.pull_ready[li]);
        if was_empty {
            self.events.push(at, EvKind::PullTick { ep });
        }
    }

    pub(crate) fn ndp_pull_tick<R: RoutingScheme + ?Sized>(&mut self, cx: &Ctx<R>, ep: u32) {
        let li = cx.ep_idx(ep);
        if self.now < self.pull_ready[li] {
            let at = self.pull_ready[li];
            self.events.push(at, EvKind::PullTick { ep });
            return;
        }
        let Some(flow) = self.pull_pop(li) else {
            return;
        };
        let f = &self.rx[cx.rx_idx(flow)];
        if !f.is_finished() {
            let suggest = f.rx_suggest;
            self.send_control(cx, flow, PktKind::Pull, 0, false, suggest);
        }
        // Pace: one pull per full-payload serialization interval.
        let payload = match cx.cfg.transport {
            Transport::Ndp { mtu_payload, .. } => mtu_payload,
            Transport::Tcp { mss, .. } => mss,
        };
        let interval = cx.cfg.ser_time(payload + crate::config::HDR_BYTES);
        self.pull_ready[li] = self.now + interval;
        if self.pull_pending(li) {
            self.events
                .push(self.pull_ready[li], EvKind::PullTick { ep });
        }
    }

    /// Arms (or extends) the lazy retransmission timer: the deadline
    /// moves to `now + RTO`, and a timer event is queued only if none is
    /// outstanding — `Shard::on_rto` re-arms a too-early firing at the
    /// extended deadline, so at most one `RtoTimer` event per flow is
    /// ever live (the eager push-per-ack scheme kept every superseded
    /// timer in the heap for a full RTO).
    fn ndp_arm_rto<R: RoutingScheme + ?Sized>(&mut self, cx: &Ctx<R>, flow: u32) {
        let ti = cx.tx_idx(flow);
        if self.tx[ti].aborted || self.tx[ti].acked_count >= cx.meta(flow).num_pkts {
            return;
        }
        let at = self.now + NDP_RTO;
        self.tx[ti].rto_deadline = at;
        if !self.tx[ti].rto_armed {
            self.tx[ti].rto_armed = true;
            let gen = self.tx[ti].rto_gen;
            self.events.push(at, EvKind::RtoTimer { flow, gen });
        }
    }

    /// Safety net: if the flow has stalled (all credits or announcements
    /// lost — rare under trimming, routine under link failures), re-pick
    /// the routing layer (§V-G fault tolerance: redirect to one of the
    /// preprovisioned alternate layers) and re-push every sent-but-
    /// unacked sequence at line rate.
    ///
    /// The full re-push matters under link and router failures: a packet
    /// dropped on a *down port* is silent — unlike a trim, nothing
    /// announces it to the receiver, so the lost sequences sit in no
    /// retransmission queue and the timeout is their only recovery path.
    /// Resending one packet per 2 ms RTO would stretch a lost w-packet
    /// window to w timeouts; resending the window mirrors the line-rate
    /// first window of §III-C (receiver-side dedup makes spurious copies
    /// harmless).
    pub(crate) fn ndp_on_rto<R: RoutingScheme + ?Sized>(
        &mut self,
        cx: &Ctx<R>,
        flow: u32,
        _gen: u32,
    ) {
        let ti = cx.tx_idx(flow);
        {
            let f = &self.tx[ti];
            // Staleness is handled by the deadline check in
            // `Shard::on_rto`: a firing only reaches here at the true
            // (fully extended) timeout instant.
            if f.aborted || !f.started || self.tx_done(cx, flow) {
                return;
            }
        }
        self.span(flow, SpanKind::Rto, 0, 0);
        let nl = cx.n_layers as u64;
        let adaptive = cx.cfg.adaptive == AdaptiveMode::QueueDepth;
        // A timeout is a flowlet boundary. Obliviously only a layer
        // re-pick applies (single-layer schemes have nothing to redraw);
        // adaptive LetFlow/ECMP also re-steers the minimal-path nonce.
        if nl > 1
            || (adaptive && matches!(cx.cfg.lb, LoadBalancing::LetFlow | LoadBalancing::EcmpFlow))
        {
            self.tx[ti].flowlet_ctr += 1;
            if !(adaptive && self.adaptive_repick(cx, flow)) && nl > 1 {
                let f = &mut self.tx[ti];
                f.layer = (fnv1a(((flow as u64) << 26) ^ 0xFA11 ^ f.flowlet_ctr as u64) % nl) as u8;
            }
        }
        let window = match cx.cfg.transport {
            Transport::Ndp { initial_window, .. } => initial_window,
            _ => 8,
        };
        // Collect into the shard's scratch buffer: RTOs fire per flow,
        // and a fresh Vec per firing is an allocation storm at scale.
        let mut missing = std::mem::take(&mut self.scratch);
        missing.clear();
        {
            let f = &self.tx[ti];
            missing.extend(
                (0..cx.meta(flow).num_pkts)
                    .filter(|&s| !f.is_acked(s))
                    .take(window as usize),
            );
        }
        self.tx[ti].retx_count += missing.len() as u32;
        for &seq in &missing {
            self.send_data(cx, flow, seq, true);
        }
        self.scratch = missing;
        self.ndp_arm_rto(cx, flow);
    }
}
