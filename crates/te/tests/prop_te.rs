//! Property coverage of negotiation safety and determinism: negotiated
//! tables stay within the layer's edge set, forward loop-free, converge
//! or cleanly hit the iteration budget, and are bit-identical across
//! thread counts.

use fatpaths_core::fwd::RoutingTables;
use fatpaths_core::layers::{build_random_layers, LayerConfig};
use fatpaths_te::{endpoint_demands, TeConfig, TeScheme};
use fatpaths_workloads::matrices::{matrix_flows, MatrixSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn negotiated_tables_are_safe_and_thread_count_invariant(
        n_layers in 2usize..5,
        rho in 0.4f64..0.8,
        layer_seed in 0u64..1_000,
        matrix_seed in 0u64..1_000,
    ) {
        let hot = 1 + (matrix_seed as usize) % 2;
        rayon::ensure_pool(4);
        let topo = fatpaths_net::topo::slimfly::slim_fly(5, 2).unwrap();
        let g = &topo.graph;
        let nr = g.n() as u32;
        let ls = build_random_layers(g, &LayerConfig::new(n_layers, rho, layer_seed));
        let rt = RoutingTables::build(g, &ls);
        let spec = MatrixSpec::HeavyHitter { hotspots: hot, skew: 0.5 };
        let demands = endpoint_demands(&topo, &matrix_flows(&topo, &spec, matrix_seed));
        let cfg = TeConfig::default();
        let te = TeScheme::negotiate(g, &rt, &demands, &cfg);

        // Converge, or cleanly exhaust the budget.
        prop_assert!(te.iterations() <= cfg.max_iterations);
        if !te.converged() {
            prop_assert_eq!(te.iterations(), cfg.max_iterations);
        }

        // Every negotiated port is an edge of its own layer subgraph, and
        // every pair forwards loop-free within its layer (with the layer-0
        // fallback resolution `candidate_ports` applies).
        for l in 0..n_layers {
            let lg = rt.layer_set().layer(l);
            for dst in 0..nr {
                for src in 0..nr {
                    if src == dst {
                        continue;
                    }
                    if let Some(p) = te.next_port(l, src, dst) {
                        let nb = g.neighbor_at(src, p as u32);
                        prop_assert!(lg.has_edge(src, nb),
                            "layer {l} row {src}->{dst} leaves the layer edge set");
                    }
                    let path = te.path(g, l, src, dst);
                    prop_assert!(path.is_some(), "layer {l} {src}->{dst} unroutable/looping");
                }
            }
        }

        // Bit-identical on one thread: same ports, same trajectory.
        let seq = rayon::run_sequential(|| TeScheme::negotiate(g, &rt, &demands, &cfg));
        prop_assert_eq!(te.iterations(), seq.iterations());
        prop_assert_eq!(te.converged(), seq.converged());
        prop_assert_eq!(te.peak().to_bits(), seq.peak().to_bits());
        for l in 0..n_layers {
            for dst in 0..nr {
                for src in 0..nr {
                    prop_assert_eq!(te.next_port(l, src, dst), seq.next_port(l, src, dst));
                }
            }
        }
    }
}
