pub fn placeholder() {}
