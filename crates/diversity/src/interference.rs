//! Path Interference (PI) — §IV-B2.
//!
//! For two communicating router pairs `(a,b)` and `(c,d)`, PI at distance
//! `l` quantifies how much the pairs' path supplies overlap:
//!
//! ```text
//! I^l_{ac,bd} = c_l({a,c},{b}) + c_l({a,c},{d}) − c_l({a,c},{b,d})
//! ```
//!
//! Positive PI means that bandwidth available to either pair shrinks when
//! both communicate (their disjoint-path sets are not independent).

use crate::cdp::{cdp_with, CdpScratch, EdgeIds};
use fatpaths_net::graph::{Graph, RouterId};
use rand::prelude::*;
use rand::rngs::StdRng;
use rayon::prelude::*;

/// Computes `I^l_{ac,bd}` for one sample of two communicating pairs.
pub fn path_interference(
    g: &Graph,
    eids: &EdgeIds,
    a: RouterId,
    b: RouterId,
    c: RouterId,
    d: RouterId,
    l: u32,
) -> i64 {
    let mut s = CdpScratch::default();
    path_interference_with(g, eids, a, b, c, d, l, &mut s)
}

/// [`path_interference`] with caller-provided scratch.
#[allow(clippy::too_many_arguments)]
pub fn path_interference_with(
    g: &Graph,
    eids: &EdgeIds,
    a: RouterId,
    b: RouterId,
    c: RouterId,
    d: RouterId,
    l: u32,
    s: &mut CdpScratch,
) -> i64 {
    let srcs = [a, c];
    let to_b = cdp_with(g, eids, &srcs, &[b], l, s) as i64;
    let to_d = cdp_with(g, eids, &srcs, &[d], l, s) as i64;
    let to_both = cdp_with(g, eids, &srcs, &[b, d], l, s) as i64;
    to_b + to_d - to_both
}

/// One sampled PI observation: the pairs and the interference value.
#[derive(Clone, Copy, Debug)]
pub struct PiSample {
    /// First communicating pair (a → b).
    pub ab: (RouterId, RouterId),
    /// Second communicating pair (c → d).
    pub cd: (RouterId, RouterId),
    /// Interference value.
    pub pi: i64,
}

/// Samples `count` router 4-tuples u.a.r. (all four routers distinct) and
/// returns their PI at distance `l`. Deterministic in `seed`; parallel.
pub fn sample_pi(g: &Graph, eids: &EdgeIds, l: u32, count: usize, seed: u64) -> Vec<PiSample> {
    let all: Vec<u32> = (0..g.n() as u32).collect();
    sample_pi_from(g, eids, l, count, seed, &all)
}

/// Like [`sample_pi`], but routers are drawn from `candidates` only — used
/// for fat trees, where only edge routers host endpoints and communicate
/// (the paper's PI is over *communicating* router pairs).
pub fn sample_pi_from(
    g: &Graph,
    eids: &EdgeIds,
    l: u32,
    count: usize,
    seed: u64,
    candidates: &[RouterId],
) -> Vec<PiSample> {
    assert!(candidates.len() >= 4, "need at least 4 candidate routers");
    // Pre-draw the tuples sequentially for determinism, evaluate in parallel.
    let mut rng = StdRng::seed_from_u64(seed);
    let m = candidates.len();
    let tuples: Vec<[u32; 4]> = (0..count)
        .map(|_| loop {
            let t = [
                candidates[rng.random_range(0..m)],
                candidates[rng.random_range(0..m)],
                candidates[rng.random_range(0..m)],
                candidates[rng.random_range(0..m)],
            ];
            let mut u = t;
            u.sort_unstable();
            if u.windows(2).all(|w| w[0] != w[1]) {
                return t;
            }
        })
        .collect();
    tuples
        .into_par_iter()
        .map_init(CdpScratch::default, |s, [a, b, c, d]| PiSample {
            ab: (a, b),
            cd: (c, d),
            pi: path_interference_with(g, eids, a, b, c, d, l, s),
        })
        .collect()
}

/// Summary statistics of a PI sample: `(mean, tail_percentile_value)`.
pub fn pi_summary(samples: &[PiSample], tail_pct: f64) -> (f64, i64) {
    if samples.is_empty() {
        return (0.0, 0);
    }
    let mut vals: Vec<i64> = samples.iter().map(|s| s.pi).collect();
    vals.sort_unstable();
    let mean = vals.iter().sum::<i64>() as f64 / vals.len() as f64;
    let idx = ((tail_pct / 100.0) * (vals.len() as f64 - 1.0)).round() as usize;
    (mean, vals[idx.min(vals.len() - 1)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use fatpaths_net::graph::Graph;

    #[test]
    fn disjoint_pairs_have_zero_pi() {
        // Two disjoint triangles bridged by nothing shared: PI must be 0.
        let g = Graph::from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 0), // component A... must be connected; bridge below
                (4, 5),
                (5, 6),
                (6, 4),
                (2, 3),
                (3, 4), // long bridge
                (0, 7),
                (7, 6), // second long bridge to keep it 2-connected
            ],
        );
        let e = EdgeIds::new(&g);
        // (0→1) and (4→5) at l=1 use only their own direct edges.
        assert_eq!(path_interference(&g, &e, 0, 1, 4, 5, 1), 0);
    }

    #[test]
    fn shared_bottleneck_has_positive_pi() {
        // Star around hub 4: pairs (0→1) and (2→3) both need the hub.
        let g = Graph::from_edges(5, &[(0, 4), (1, 4), (2, 4), (3, 4)]);
        let e = EdgeIds::new(&g);
        // c_2({0,2},{1}) = 1, c_2({0,2},{3}) = 1, c_2({0,2},{1,3}): paths
        // 0-4-1 and 2-4-3 share no edge → 2. PI = 0 here (edge-disjoint).
        assert_eq!(path_interference(&g, &e, 0, 1, 2, 3, 2), 0);
        // Through a single shared edge it becomes positive: path graph.
        let g2 = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let e2 = EdgeIds::new(&g2);
        // (0→3) and (1→2) share edge 1-2: c_3({0,1},{3})=1, c_3({0,1},{2})=1,
        // c_3({0,1},{2,3})=1 ⇒ PI=1.
        assert_eq!(path_interference(&g2, &e2, 0, 3, 1, 2, 3), 1);
    }

    #[test]
    fn sampling_is_deterministic() {
        let t = fatpaths_net::topo::slimfly::slim_fly(5, 1).unwrap();
        let e = EdgeIds::new(&t.graph);
        let a = sample_pi(&t.graph, &e, 3, 50, 9);
        let b = sample_pi(&t.graph, &e, 3, 50, 9);
        let va: Vec<i64> = a.iter().map(|s| s.pi).collect();
        let vb: Vec<i64> = b.iter().map(|s| s.pi).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn ft_zero_pi_between_edge_routers() {
        // Table IV: FT3 has PI ≈ 0 between communicating (edge) routers —
        // full bisection means disjoint path supplies don't overlap.
        let ft = fatpaths_net::topo::fattree::fat_tree(8, 1);
        let e = EdgeIds::new(&ft.graph);
        let edge_routers: Vec<u32> =
            (0..fatpaths_net::topo::fattree::edge_router_count(8)).collect();
        let samples = sample_pi_from(&ft.graph, &e, 4, 60, 3, &edge_routers);
        let (mean, _) = pi_summary(&samples, 99.9);
        assert!(mean.abs() < 0.6, "FT mean PI {mean} not ~0");
    }

    #[test]
    fn pi_summary_percentiles() {
        let samples: Vec<PiSample> = (0..100)
            .map(|i| PiSample {
                ab: (0, 1),
                cd: (2, 3),
                pi: i,
            })
            .collect();
        let (mean, p99) = pi_summary(&samples, 99.0);
        assert!((mean - 49.5).abs() < 1e-9);
        assert_eq!(p99, 98); // (99/100)·(100−1) rounds to index 98
    }
}
