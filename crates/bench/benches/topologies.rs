//! Benchmarks for topology construction — the substrate every experiment
//! pays for first.

use criterion::{criterion_group, criterion_main, Criterion};
use fatpaths_net::topo::{
    dragonfly::dragonfly, fattree::fat_tree, hyperx::hyperx, jellyfish::jellyfish,
    slimfly::slim_fly, xpander::xpander,
};
use std::hint::black_box;

fn bench_topologies(c: &mut Criterion) {
    let mut g = c.benchmark_group("topology_construction");
    g.bench_function("slim_fly_q19", |b| {
        b.iter(|| black_box(slim_fly(19, 14).unwrap()))
    });
    g.bench_function("dragonfly_p8", |b| b.iter(|| black_box(dragonfly(8))));
    g.bench_function("hyperx_3_11", |b| b.iter(|| black_box(hyperx(3, 11, 10))));
    g.bench_function("fat_tree_k28", |b| b.iter(|| black_box(fat_tree(28, 2))));
    g.bench_function("jellyfish_722_29", |b| {
        b.iter(|| black_box(jellyfish(722, 29, 14, 1)))
    });
    g.bench_function("xpander_k32", |b| {
        b.iter(|| black_box(xpander(32, 32, 16, 1)))
    });
    g.finish();
}

fn bench_graph_ops(c: &mut Criterion) {
    let t = slim_fly(19, 14).unwrap();
    let mut g = c.benchmark_group("graph_ops");
    g.bench_function("bfs_sf722", |b| b.iter(|| black_box(t.graph.bfs(0))));
    g.bench_function("diameter_apl_sampled_64", |b| {
        b.iter(|| black_box(t.graph.diameter_apl_sampled(64)))
    });
    g.finish();
}

criterion_group!(benches, bench_topologies, bench_graph_ops);
criterion_main!(benches);
