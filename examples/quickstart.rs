//! Quickstart: build a Slim Fly, analyze its path diversity, construct
//! FatPaths layered routing, and simulate an adversarial workload with the
//! purified transport — the end-to-end story of the paper in ~80 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fatpaths::diversity::cdp::{cdp, EdgeIds};
use fatpaths::prelude::*;

fn main() {
    // 1. Topology: Slim Fly MMS(q=11) — 242 routers, k'=17, diameter 2.
    let topo = fatpaths::net::topo::slimfly::slim_fly(11, 8).expect("valid q");
    println!(
        "topology  {}  routers={} endpoints={} k'={} diameter={}",
        topo.name,
        topo.num_routers(),
        topo.num_endpoints(),
        topo.network_radix(),
        topo.diameter
    );

    // 2. Shortest paths fall short: count minimal vs almost-minimal
    //    disjoint paths for a sample pair (§IV).
    let eids = EdgeIds::new(&topo.graph);
    let (s, t) = (0u32, 141u32);
    let lmin = topo.graph.bfs(s)[t as usize];
    let cmin = cdp(&topo.graph, &eids, &[s], &[t], lmin);
    let c_plus1 = cdp(&topo.graph, &eids, &[s], &[t], lmin + 1);
    println!("pair ({s},{t}): lmin={lmin}, disjoint minimal paths={cmin}, at lmin+1: {c_plus1}");

    // 3. FatPaths layered routing: 9 layers, ρ = 0.6 (§V).
    let layers = build_random_layers(&topo.graph, &LayerConfig::new(9, 0.6, 7));
    let tables = RoutingTables::build(&topo.graph, &layers);
    for layer in [0usize, 1, 2] {
        let path = tables.path(&topo.graph, layer, s, t).unwrap();
        println!("layer {layer}: path {:?} ({} hops)", path, path.len() - 1);
    }

    // 4. Adversarial aligned workload: every endpoint of a router collides
    //    on the same destination router (§VII-B2).
    let n = topo.num_endpoints() as u64;
    let p = topo.concentration[0] as u64;
    let offset = p * (topo.num_routers() as u64 / 2 + 1);
    let flows: Vec<FlowSpec> = (0..n)
        .map(|e| FlowSpec {
            src: e as u32,
            dst: ((e + offset) % n) as u32,
            size: 512 * 1024,
            start: 0,
        })
        .collect();

    // 5. Simulate: FatPaths (flowlets over layers, purified transport) vs
    //    single-path minimal routing — one builder line per scheme.
    let run = |spec: SchemeSpec| {
        Scenario::on(&topo)
            .scheme(spec)
            .transport(Transport::ndp_default())
            .workload(&flows)
            .seed(7)
            .run()
    };
    let minimal = run(SchemeSpec::LayeredMinimal);
    let fatpaths = run(SchemeSpec::LayeredRandom {
        n_layers: 9,
        rho: 0.6,
    });
    let mk = |r: &SimResult| r.makespan().unwrap() as f64 / 1e9;
    println!("\nadversarial workload ({} flows of 512 KiB):", flows.len());
    println!(
        "  minimal routing : makespan {:>8.2} ms, trims {}",
        mk(&minimal),
        minimal.trims
    );
    println!(
        "  FatPaths (n=9)  : makespan {:>8.2} ms, trims {}",
        mk(&fatpaths),
        fatpaths.trims
    );
    println!(
        "  speedup {:.2}x — non-minimal path diversity absorbs the collisions",
        mk(&minimal) / mk(&fatpaths)
    );
}
