//! Traffic-engineering sweep: negotiated-congestion TE (`fatpaths-te`)
//! scored against static FatPaths layers, ECMP, and the `fatpaths-mcf`
//! cut/volumetric throughput upper bound on adversarial and skewed
//! matrices.
//!
//! Each (topology × matrix) cell shares one static layer set and one
//! router demand vector; the TE cell negotiates the layers against that
//! matrix (PathFinder-style present + historic congestion pricing) and
//! every scheme is scored by [`fatpaths_te::edge_loads`] under the same
//! equal-flowlet-split demand model, so `achieved / optimal` ratios are
//! directly comparable across rows. Deterministic at any thread count:
//! the grid runs through [`SweepRunner`], seeds derive from cell
//! coordinates, and rows assemble in grid order.

use crate::common::{f, is_smoke, label, write_summary, write_text};
use fatpaths_core::fwd::RoutingTables;
use fatpaths_core::layers::{build_random_layers, LayerConfig};
use fatpaths_mcf::{throughput_upper_bound, RouterDemand};
use fatpaths_net::classes::{build, SizeClass};
use fatpaths_net::topo::{TopoKind, Topology};
use fatpaths_sim::{cell_seed, coord_str, Scenario, SchemeSpec, SweepRunner, TeConfig, TeScheme};
use fatpaths_te::{achieved_throughput, edge_loads, endpoint_demands};
use fatpaths_workloads::matrices::{matrix_flows, MatrixSpec};
use std::io;

/// CSV header of the TE sweep artifact.
const HEADER: &str = "topology,matrix,scheme,layers,achieved,optimal,ratio,iterations,converged";

/// The traffic matrices TE is scored on: the worst-case permutation the
/// MAT analysis uses, and a heavy-hitter skew.
fn matrices() -> Vec<MatrixSpec> {
    vec![
        MatrixSpec::WorstCase { intensity: 0.7 },
        MatrixSpec::HeavyHitter {
            hotspots: 2,
            skew: 0.5,
        },
    ]
}

/// One (topology, matrix) context shared by all scheme cells.
struct Prep {
    topo: Topology,
    matrix_label: String,
    demands: Vec<RouterDemand>,
    tables: RoutingTables,
    upper: f64,
}

/// Runs the TE sweep grid on the given topologies and returns
/// `(csv_text, summary_text)`; byte-identical at any thread count (the
/// parity suite pins this with miniature topologies).
pub fn te_matrix_on(topos: Vec<Topology>, n_layers: usize, rho: f64) -> (String, String) {
    let specs = matrices();
    let mut prep_cells: Vec<(usize, usize)> = Vec::new();
    for ti in 0..topos.len() {
        for mi in 0..specs.len() {
            prep_cells.push((ti, mi));
        }
    }
    // Per (topology, matrix) prep: demands, the static layer tables both
    // the `fatpaths` and `te` rows start from, and the throughput bound.
    let prep = SweepRunner::new("te-prep", prep_cells).run(|_, &(ti, mi)| {
        let topo = topos[ti].clone();
        let spec = &specs[mi];
        let mseed = cell_seed(
            "te-matrix",
            &[coord_str(&label(&topo)), coord_str(&spec.label())],
        );
        let flows = matrix_flows(&topo, spec, mseed);
        let demands = endpoint_demands(&topo, &flows);
        let lseed = cell_seed("te-layers", &[coord_str(&label(&topo))]);
        let ls = build_random_layers(&topo.graph, &LayerConfig::new(n_layers, rho, lseed));
        let tables = RoutingTables::build(&topo.graph, &ls);
        let upper = throughput_upper_bound(&topo, &demands);
        Prep {
            topo,
            matrix_label: spec.label(),
            demands,
            tables,
            upper,
        }
    });
    const SCHEMES: [&str; 3] = ["fatpaths", "te", "ecmp"];
    let mut cells: Vec<(usize, usize)> = Vec::new();
    for pi in 0..prep.len() {
        for si in 0..SCHEMES.len() {
            cells.push((pi, si));
        }
    }
    let results = SweepRunner::new("te", cells).run(|_, &(pi, si)| {
        let p = &prep[pi];
        let g = &p.topo.graph;
        let (layers, achieved, iterations, converged) = match SCHEMES[si] {
            "fatpaths" => {
                let loads = edge_loads(&p.tables, g, &p.demands);
                (
                    n_layers,
                    achieved_throughput(&loads),
                    String::new(),
                    String::new(),
                )
            }
            "te" => {
                let te = TeScheme::negotiate(g, &p.tables, &p.demands, &TeConfig::default());
                let loads = edge_loads(&te, g, &p.demands);
                (
                    n_layers,
                    achieved_throughput(&loads),
                    te.iterations().to_string(),
                    te.converged().to_string(),
                )
            }
            _ => {
                let ecmp = Scenario::on(&p.topo)
                    .scheme(SchemeSpec::Minimal)
                    .build_scheme();
                let loads = edge_loads(&ecmp, g, &p.demands);
                (1, achieved_throughput(&loads), String::new(), String::new())
            }
        };
        let row = [
            label(&p.topo),
            p.matrix_label.clone(),
            SCHEMES[si].to_string(),
            layers.to_string(),
            f(achieved),
            f(p.upper),
            f(achieved / p.upper),
            iterations,
            converged,
        ]
        .join(",");
        (row, achieved)
    });
    let mut csv = String::from(HEADER);
    csv.push('\n');
    let mut summary = String::from(
        "Traffic engineering — negotiated layers vs static FatPaths vs ECMP vs throughput bound\n",
    );
    for (pi, p) in prep.iter().enumerate() {
        summary.push_str(&format!(
            "-- {} × {} ({} commodities, optimal {:.4}) --\n",
            label(&p.topo),
            p.matrix_label,
            p.demands.len(),
            p.upper
        ));
        let group = &results[pi * SCHEMES.len()..(pi + 1) * SCHEMES.len()];
        for (si, (row, achieved)) in group.iter().enumerate() {
            csv.push_str(row);
            csv.push('\n');
            summary.push_str(&format!(
                "{:<9} achieved {:>8.4}  ratio {:>6.3}\n",
                SCHEMES[si],
                achieved,
                achieved / p.upper
            ));
        }
        let static_t = group[0].1;
        let te_t = group[1].1;
        summary.push_str(&format!(
            "   TE gain over static layers: {:+.1}%\n",
            (te_t / static_t - 1.0) * 100.0
        ));
    }
    summary.push_str(
        "TE starts from the static tables (iteration 0) and keeps the best iteration,\n\
         so its row is never below the fatpaths row; gains concentrate where the\n\
         matrix is skewed and static layer hashing collides.\n",
    );
    (csv, summary)
}

/// Runs the sweep on SF + FT3 (the acceptance pair) at the small class,
/// or miniature instances under the CI smoke gate.
pub fn te(quick: bool) -> io::Result<()> {
    let (topos, n_layers) = if is_smoke() {
        (
            vec![
                fatpaths_net::topo::slimfly::slim_fly(5, 2).unwrap(),
                fatpaths_net::topo::fattree::fat_tree(4, 1),
            ],
            4,
        )
    } else {
        (
            vec![
                build(TopoKind::SlimFly, SizeClass::Small, 1),
                build(TopoKind::FatTree, SizeClass::Small, 1),
            ],
            9,
        )
    };
    let _ = quick; // grid is MCF/negotiation only — cheap at full scale
    let (csv, summary) = te_matrix_on(topos, n_layers, 0.6);
    write_text("te.csv", &csv)?;
    write_summary("te", &summary)
}
