//! Bulk-synchronous stencil workload (Fig. 17).
//!
//! Models the HPC pattern of §VII-C: every process does local compute,
//! exchanges fixed-size messages with its stencil neighbors, then
//! synchronizes on a barrier. The network-visible part of one iteration is
//! a bulk phase of `4N` flows; total completion time is the sum of phase
//! makespans (plus compute, which is routing-independent and omitted).

use crate::arrivals::{bulk_flows, FlowSpec, TimePs};
use crate::patterns::Pattern;

/// A stencil workload description.
#[derive(Clone, Debug)]
pub struct StencilWorkload {
    /// Number of endpoints.
    pub n: u32,
    /// Diagonal offsets (default `{±1, ±42}`).
    pub offsets: Vec<i64>,
    /// Message size per neighbor exchange (bytes).
    pub message_size: u64,
    /// Number of iterations (barrier-separated phases).
    pub iterations: u32,
}

impl StencilWorkload {
    /// The paper's small 2D stencil.
    pub fn new(n: u32, message_size: u64, iterations: u32) -> Self {
        StencilWorkload {
            n,
            offsets: vec![1, -1, 42, -42],
            message_size,
            iterations,
        }
    }

    /// Flow list of one phase, with an optional endpoint mapping applied
    /// and all flows starting at `start`.
    pub fn phase_flows(&self, mapping: Option<&[u32]>, start: TimePs) -> Vec<FlowSpec> {
        let pattern = Pattern::Stencil {
            offsets: self.offsets.clone(),
        };
        let mut pairs = pattern.flows(self.n as u64, 0);
        if let Some(m) = mapping {
            pairs = crate::mapping::apply_mapping(m, &pairs);
        }
        bulk_flows(&pairs, self.message_size, start)
    }

    /// Total completion time given the measured makespan of one phase —
    /// barrier semantics make iterations strictly sequential.
    pub fn total_completion(&self, phase_makespan: TimePs) -> TimePs {
        phase_makespan * self.iterations as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_has_4n_flows() {
        let w = StencilWorkload::new(100, 4096, 3);
        let flows = w.phase_flows(None, 0);
        assert_eq!(flows.len(), 400);
        assert!(flows.iter().all(|f| f.size == 4096));
    }

    #[test]
    fn mapping_changes_endpoints_not_count() {
        let w = StencilWorkload::new(100, 1024, 1);
        let m = crate::mapping::random_mapping(100, 9);
        let a = w.phase_flows(None, 0);
        let b = w.phase_flows(Some(&m), 0);
        assert_eq!(a.len(), b.len());
        assert_ne!(a, b);
    }

    #[test]
    fn completion_scales_with_iterations() {
        let w = StencilWorkload::new(10, 1, 5);
        assert_eq!(w.total_completion(1000), 5000);
    }
}
