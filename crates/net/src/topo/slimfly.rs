//! Slim Fly (MMS) topology generator — diameter-2 networks approaching the
//! Moore bound (Besta & Hoefler, SC'14; McKay–Miller–Širáň graphs).
//!
//! Construction (Appendix A of the FatPaths paper): routers are labeled
//! `(i, x, y)` with `i ∈ {0,1}` and `x, y ∈ GF(q)` for a prime `q = 4w ± 1`.
//! With `ξ` a primitive root of `GF(q)` and generator sets `X, X'`:
//!
//! * `(0,x,y) ~ (0,x,y')`  iff `y − y' ∈ X`
//! * `(1,m,c) ~ (1,m,c')`  iff `c − c' ∈ X'`
//! * `(0,x,y) ~ (1,m,c)`   iff `y = m·x + c`
//!
//! yielding `Nr = 2q²` routers of network radix `k' = (3q − δ)/2` and
//! diameter 2. We implement prime `q` only (see DESIGN.md §2.6); the
//! diameter-2 property is asserted by tests for every shipped `q`.

use super::{LinkClass, TopoKind, Topology};

/// Errors from the Slim Fly generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlimFlyError {
    /// `q` is not prime.
    NotPrime(u32),
    /// `q mod 4` is not 1 or 3 (δ would be 0; needs GF(2^k), unsupported).
    BadResidue(u32),
}

impl std::fmt::Display for SlimFlyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SlimFlyError::NotPrime(q) => write!(f, "Slim Fly parameter q={q} must be prime"),
            SlimFlyError::BadResidue(q) => {
                write!(f, "Slim Fly parameter q={q} must satisfy q ≡ ±1 (mod 4)")
            }
        }
    }
}

impl std::error::Error for SlimFlyError {}

fn is_prime(q: u32) -> bool {
    if q < 2 {
        return false;
    }
    let mut d = 2u32;
    while d * d <= q {
        if q.is_multiple_of(d) {
            return false;
        }
        d += 1;
    }
    true
}

/// Finds the smallest primitive root modulo prime `q`.
fn primitive_root(q: u32) -> u32 {
    if q == 2 {
        return 1;
    }
    // Factor q-1.
    let mut factors = Vec::new();
    let mut rest = q - 1;
    let mut d = 2;
    while d * d <= rest {
        if rest.is_multiple_of(d) {
            factors.push(d);
            while rest.is_multiple_of(d) {
                rest /= d;
            }
        }
        d += 1;
    }
    if rest > 1 {
        factors.push(rest);
    }
    'cand: for g in 2..q {
        for &f in &factors {
            if pow_mod(g, (q - 1) / f, q) == 1 {
                continue 'cand;
            }
        }
        return g;
    }
    unreachable!("every prime field has a primitive root")
}

fn pow_mod(base: u32, mut exp: u32, q: u32) -> u32 {
    let mut acc: u64 = 1;
    let mut b = base as u64 % q as u64;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc * b % q as u64;
        }
        b = b * b % q as u64;
        exp >>= 1;
    }
    acc as u32
}

/// The MMS generator sets `(X, X')` for prime `q = 4w + δ`, `δ = ±1`.
///
/// * `δ = +1` (`q ≡ 1 mod 4`): `X` = even powers of `ξ` (the quadratic
///   residues), `X'` = odd powers; both of size `(q−1)/2`.
/// * `δ = −1` (`q ≡ 3 mod 4`): `X = {ξ^{2i}} ∪ {ξ^{2i+2w−1}}` for
///   `i ∈ [0, w)` and `X' = ξ·X`; both of size `(q+1)/2 = 2w`.
///
/// Both sets are symmetric (`X = −X`), making the intra-subgraph Cayley
/// graphs undirected.
pub fn generator_sets(q: u32) -> Result<(Vec<u32>, Vec<u32>), SlimFlyError> {
    if !is_prime(q) {
        return Err(SlimFlyError::NotPrime(q));
    }
    let xi = primitive_root(q) as u64;
    let qq = q as u64;
    match q % 4 {
        1 => {
            let half = ((q - 1) / 2) as usize;
            let mut x = Vec::with_capacity(half);
            let mut xp = Vec::with_capacity(half);
            let mut cur = 1u64;
            for i in 0..(q - 1) {
                if i % 2 == 0 {
                    x.push(cur as u32);
                } else {
                    xp.push(cur as u32);
                }
                cur = cur * xi % qq;
            }
            Ok((x, xp))
        }
        3 => {
            let w = ((q + 1) / 4) as usize;
            // Powers table.
            let mut pw = vec![1u32; (q - 1) as usize];
            for i in 1..pw.len() {
                pw[i] = (pw[i - 1] as u64 * xi % qq) as u32;
            }
            let modlen = pw.len();
            let mut x = Vec::with_capacity(2 * w);
            for i in 0..w {
                x.push(pw[(2 * i) % modlen]);
            }
            for i in 0..w {
                x.push(pw[(2 * i + 2 * w - 1) % modlen]);
            }
            let xp: Vec<u32> = x.iter().map(|&e| (e as u64 * xi % qq) as u32).collect();
            Ok((x, xp))
        }
        _ => Err(SlimFlyError::BadResidue(q)),
    }
}

/// Router id of `(subgraph, a, b)` in the `2q²` layout.
#[inline]
fn rid(sub: u32, a: u32, b: u32, q: u32) -> u32 {
    sub * q * q + a * q + b
}

/// Builds a Slim Fly `MMS(q)` with `p` endpoints per router.
///
/// Links within a subgraph column (`x` or `m` fixed) are classed
/// [`LinkClass::Short`]; cross-subgraph links are [`LinkClass::Long`].
pub fn slim_fly(q: u32, p: u32) -> Result<Topology, SlimFlyError> {
    let (x_set, xp_set) = generator_sets(q)?;
    let nr = (2 * q * q) as usize;
    let mut edges = Vec::new();
    // Subgraph 0: (0,x,y) ~ (0,x,y') iff y - y' ∈ X.
    for x in 0..q {
        for y in 0..q {
            for &dx in &x_set {
                let y2 = (y + dx) % q;
                let (u, v) = (rid(0, x, y, q), rid(0, x, y2, q));
                if u < v {
                    edges.push((u, v, LinkClass::Short));
                }
            }
        }
    }
    // Subgraph 1: (1,m,c) ~ (1,m,c') iff c - c' ∈ X'.
    for m in 0..q {
        for c in 0..q {
            for &dx in &xp_set {
                let c2 = (c + dx) % q;
                let (u, v) = (rid(1, m, c, q), rid(1, m, c2, q));
                if u < v {
                    edges.push((u, v, LinkClass::Long)); // different racks in practice
                }
            }
        }
    }
    // Cross: (0,x,y) ~ (1,m,c) iff y = m·x + c.
    for x in 0..q {
        for m in 0..q {
            for c in 0..q {
                let y = ((m as u64 * x as u64 + c as u64) % q as u64) as u32;
                edges.push((rid(0, x, y, q), rid(1, m, c, q), LinkClass::Long));
            }
        }
    }
    let delta: i64 = if q % 4 == 1 { 1 } else { -1 };
    let kprime = ((3 * q as i64 - delta) / 2) as u32;
    let topo = Topology::assemble(
        TopoKind::SlimFly,
        format!("SF(q={q},p={p})"),
        nr,
        edges,
        Topology::uniform_concentration(nr, p),
        2,
    );
    debug_assert_eq!(topo.network_radix() as u32, kprime);
    Ok(topo)
}

/// Expected network radix `k' = (3q − δ)/2` for prime `q ≡ ±1 (mod 4)`.
pub fn expected_radix(q: u32) -> u32 {
    let delta: i64 = if q % 4 == 1 { 1 } else { -1 };
    ((3 * q as i64 - delta) / 2) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_q() {
        assert!(matches!(slim_fly(9, 1), Err(SlimFlyError::NotPrime(9))));
        assert!(matches!(slim_fly(2, 1), Err(SlimFlyError::BadResidue(2))));
    }

    #[test]
    fn generator_sets_symmetric() {
        for q in [5u32, 7, 11, 13, 17, 19, 23, 29] {
            let (x, xp) = generator_sets(q).unwrap();
            for set in [&x, &xp] {
                for &e in set.iter() {
                    let neg = (q - e) % q;
                    assert!(set.contains(&neg), "q={q}: set not symmetric at {e}");
                }
                let mut s = set.clone();
                s.sort_unstable();
                s.dedup();
                assert_eq!(s.len(), set.len(), "q={q}: duplicate generators");
            }
        }
    }

    #[test]
    fn mms_regular_radix_and_diameter_two() {
        for q in [5u32, 7, 11, 13] {
            let t = slim_fly(q, 1).unwrap();
            assert_eq!(t.num_routers() as u32, 2 * q * q, "q={q}");
            assert!(t.graph.is_regular(), "q={q} not regular");
            assert_eq!(t.network_radix() as u32, expected_radix(q), "q={q}");
            let (d, _) = t.graph.diameter_apl();
            assert_eq!(d, 2, "q={q} diameter");
        }
    }

    #[test]
    fn paper_config_q19() {
        // Table IV of the paper: SF with k'=29, Nr=722, N=10108 (p=14).
        let t = slim_fly(19, 14).unwrap();
        assert_eq!(t.num_routers(), 722);
        assert_eq!(t.network_radix(), 29);
        assert_eq!(t.num_endpoints(), 10108);
        let (d, _) = t.graph.diameter_apl();
        assert_eq!(d, 2);
    }

    #[test]
    fn cross_links_are_q_per_router() {
        let q = 7;
        let t = slim_fly(q, 1).unwrap();
        // Each subgraph-0 router has exactly q cross links (one per m).
        let u = 0u32; // (0,0,0)
        let cross = t.graph.neighbors(u).iter().filter(|&&v| v >= q * q).count();
        assert_eq!(cross as u32, q);
    }
}
