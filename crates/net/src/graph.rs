//! Compact undirected graph used for all topology and routing work.
//!
//! The graph is stored in CSR (compressed sparse row) form with sorted
//! neighbor lists, so membership queries are `O(log k')` and the whole
//! structure is two flat allocations. Routers are identified by dense
//! `u32` ids (`RouterId`), matching the paper's model where endpoints are
//! not part of the router graph (§II-A).

/// Dense identifier of a router (the paper's vertex set `V`).
pub type RouterId = u32;

/// Distance value returned by BFS; `UNREACHABLE` marks disconnected pairs.
pub const UNREACHABLE: u32 = u32::MAX;

/// An undirected simple graph over routers `0..n` in CSR form.
///
/// Neighbor lists are sorted, which gives each incident edge of a router a
/// stable *port number* (its index in the list) — the simulator and the
/// forwarding tables address links through these ports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<u32>,
    neigh: Vec<RouterId>,
}

impl Graph {
    /// Builds a graph with `n` routers from an undirected edge list.
    ///
    /// Self-loops are rejected; duplicate edges (in either orientation) are
    /// collapsed. Panics if an endpoint is out of range.
    pub fn from_edges(n: usize, edges: &[(RouterId, RouterId)]) -> Self {
        let mut adj: Vec<Vec<RouterId>> = vec![Vec::new(); n];
        for &(u, v) in edges {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge ({u},{v}) out of range for n={n}"
            );
            assert_ne!(u, v, "self-loop at router {u}");
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neigh = Vec::with_capacity(edges.len() * 2);
        offsets.push(0);
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
            neigh.extend_from_slice(list);
            offsets.push(neigh.len() as u32);
        }
        Graph { offsets, neigh }
    }

    /// Number of routers.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.neigh.len() / 2
    }

    /// Sorted neighbor list of `u`; index into it is the port number.
    #[inline]
    pub fn neighbors(&self, u: RouterId) -> &[RouterId] {
        let lo = self.offsets[u as usize] as usize;
        let hi = self.offsets[u as usize + 1] as usize;
        &self.neigh[lo..hi]
    }

    /// Degree (network radix `k'` for regular topologies) of `u`.
    #[inline]
    pub fn degree(&self, u: RouterId) -> usize {
        self.neighbors(u).len()
    }

    /// Maximum degree over all routers.
    pub fn max_degree(&self) -> usize {
        (0..self.n())
            .map(|u| self.degree(u as u32))
            .max()
            .unwrap_or(0)
    }

    /// Minimum degree over all routers.
    pub fn min_degree(&self) -> usize {
        (0..self.n())
            .map(|u| self.degree(u as u32))
            .min()
            .unwrap_or(0)
    }

    /// True iff every router has the same degree.
    pub fn is_regular(&self) -> bool {
        self.max_degree() == self.min_degree()
    }

    /// True iff `{u, v}` is an edge.
    #[inline]
    pub fn has_edge(&self, u: RouterId, v: RouterId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Port of `u` that leads to `v`, if the link exists.
    #[inline]
    pub fn port_of(&self, u: RouterId, v: RouterId) -> Option<u32> {
        self.neighbors(u).binary_search(&v).ok().map(|p| p as u32)
    }

    /// Neighbor of `u` behind port `port`.
    #[inline]
    pub fn neighbor_at(&self, u: RouterId, port: u32) -> RouterId {
        self.neighbors(u)[port as usize]
    }

    /// Iterates over undirected edges as `(u, v)` with `u < v`, in canonical
    /// order (by `u`, then by `v`). Parallel metadata (e.g. link classes) is
    /// stored in this order.
    pub fn edges(&self) -> impl Iterator<Item = (RouterId, RouterId)> + '_ {
        (0..self.n() as u32)
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
            .filter(|&(u, v)| u < v)
    }

    /// Collects the canonical edge list.
    pub fn edge_vec(&self) -> Vec<(RouterId, RouterId)> {
        self.edges().collect()
    }

    /// Index of canonical edge `{u, v}` into [`Graph::edge_vec`] order.
    ///
    /// Built lazily by callers that need it; provided here for convenience
    /// as a linear scan-free lookup using per-router prefix counts.
    pub fn edge_index_map(&self) -> rustc_hash::FxHashMap<(RouterId, RouterId), u32> {
        let mut map = rustc_hash::FxHashMap::default();
        map.reserve(self.m());
        for (i, (u, v)) in self.edges().enumerate() {
            map.insert((u, v), i as u32);
        }
        map
    }

    /// BFS hop distances from `src` into `dist` (resized and overwritten).
    /// Unreached routers get [`UNREACHABLE`].
    pub fn bfs_into(&self, src: RouterId, dist: &mut Vec<u32>, queue: &mut Vec<RouterId>) {
        dist.clear();
        dist.resize(self.n(), UNREACHABLE);
        queue.clear();
        dist[src as usize] = 0;
        queue.push(src);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            let du = dist[u as usize];
            for &v in self.neighbors(u) {
                if dist[v as usize] == UNREACHABLE {
                    dist[v as usize] = du + 1;
                    queue.push(v);
                }
            }
        }
    }

    /// Allocating convenience wrapper around [`Graph::bfs_into`].
    pub fn bfs(&self, src: RouterId) -> Vec<u32> {
        let mut dist = Vec::new();
        let mut queue = Vec::new();
        self.bfs_into(src, &mut dist, &mut queue);
        dist
    }

    /// True iff the graph is connected (vacuously true for `n == 0`).
    pub fn is_connected(&self) -> bool {
        if self.n() == 0 {
            return true;
        }
        let dist = self.bfs(0);
        dist.iter().all(|&d| d != UNREACHABLE)
    }

    /// Exact diameter and average shortest path length over all ordered
    /// router pairs. `O(n·m)`; intended for construction-time validation and
    /// small/medium instances. Returns `(diameter, avg_path_length)`.
    /// Panics if the graph is disconnected.
    pub fn diameter_apl(&self) -> (u32, f64) {
        let mut diam = 0u32;
        let mut total = 0u64;
        let mut dist = Vec::new();
        let mut queue = Vec::new();
        for src in 0..self.n() as u32 {
            self.bfs_into(src, &mut dist, &mut queue);
            for (v, &d) in dist.iter().enumerate() {
                assert!(d != UNREACHABLE, "graph disconnected at ({src},{v})");
                diam = diam.max(d);
                total += d as u64;
            }
        }
        let pairs = (self.n() as u64) * (self.n() as u64 - 1);
        (diam, total as f64 / pairs as f64)
    }

    /// Sampled estimate of `(diameter_lower_bound, avg_path_length)` using
    /// `samples` BFS sources chosen deterministically. Suitable for large
    /// instances where `O(n·m)` all-pairs is too expensive.
    pub fn diameter_apl_sampled(&self, samples: usize) -> (u32, f64) {
        let n = self.n();
        let take = samples.min(n).max(1);
        let stride = (n / take).max(1);
        let mut diam = 0u32;
        let mut total = 0u64;
        let mut count = 0u64;
        let mut dist = Vec::new();
        let mut queue = Vec::new();
        for i in 0..take {
            let src = ((i * stride) % n) as u32;
            self.bfs_into(src, &mut dist, &mut queue);
            for &d in &dist {
                if d != UNREACHABLE {
                    diam = diam.max(d);
                    total += d as u64;
                    count += 1;
                }
            }
            count -= 1; // exclude the src->src zero
        }
        (diam, total as f64 / count.max(1) as f64)
    }

    /// Sum of all degrees (`2m`), i.e. total directed link count.
    pub fn total_ports(&self) -> usize {
        self.neigh.len()
    }

    /// Degraded view: the same router set with the given links removed
    /// (either orientation; links absent from the graph are ignored).
    ///
    /// **Port numbering caveat:** the returned graph renumbers ports
    /// (CSR neighbor indices shift when edges vanish), so it is meant for
    /// *connectivity and distance* queries — degraded BFS, reachability,
    /// rebuilding routing state. Forwarding tables that must keep
    /// addressing the physical ports of the original graph should be
    /// rebuilt with the original graph as the port-lookup base (see
    /// `RoutingTables::build`, which takes layer graphs and a base).
    pub fn without_edges(&self, removed: &[(RouterId, RouterId)]) -> Graph {
        let dead: rustc_hash::FxHashSet<(RouterId, RouterId)> =
            removed.iter().map(|&(u, v)| (u.min(v), u.max(v))).collect();
        let edges: Vec<(RouterId, RouterId)> = self
            .edges()
            .filter(|&(u, v)| !dead.contains(&(u, v)))
            .collect();
        Graph::from_edges(self.n(), &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2)])
    }

    #[test]
    fn csr_layout_and_ports() {
        let g = path3();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.port_of(1, 2), Some(1));
        assert_eq!(g.port_of(0, 2), None);
        assert_eq!(g.neighbor_at(1, 0), 0);
    }

    #[test]
    fn duplicate_edges_collapse() {
        let g = Graph::from_edges(2, &[(0, 1), (1, 0), (0, 1)]);
        assert_eq!(g.m(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let _ = Graph::from_edges(2, &[(0, 0)]);
    }

    #[test]
    fn bfs_distances() {
        let g = path3();
        assert_eq!(g.bfs(0), vec![0, 1, 2]);
        assert_eq!(g.bfs(1), vec![1, 0, 1]);
    }

    #[test]
    fn disconnected_detected() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!g.is_connected());
        assert_eq!(g.bfs(0)[2], UNREACHABLE);
    }

    #[test]
    fn diameter_of_cycle() {
        // 6-cycle: diameter 3, APL = (1+1+2+2+3)/5 = 1.8
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let (d, apl) = g.diameter_apl();
        assert_eq!(d, 3);
        assert!((apl - 1.8).abs() < 1e-9);
    }

    #[test]
    fn edges_canonical_order() {
        let g = Graph::from_edges(4, &[(2, 1), (0, 3), (0, 1)]);
        let edges = g.edge_vec();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2)]);
        let idx = g.edge_index_map();
        assert_eq!(idx[&(0, 3)], 1);
    }

    #[test]
    fn complete_graph_props() {
        let n = 8u32;
        let mut e = Vec::new();
        for u in 0..n {
            for v in u + 1..n {
                e.push((u, v));
            }
        }
        let g = Graph::from_edges(n as usize, &e);
        assert!(g.is_regular());
        assert_eq!(g.degree(0), 7);
        let (d, apl) = g.diameter_apl();
        assert_eq!(d, 1);
        assert!((apl - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_apl_close_to_exact_on_symmetric_graph() {
        let mut e = Vec::new();
        let n = 20u32;
        for u in 0..n {
            e.push((u, (u + 1) % n));
        }
        let g = Graph::from_edges(n as usize, &e);
        let (d_exact, apl_exact) = g.diameter_apl();
        let (d_s, apl_s) = g.diameter_apl_sampled(20);
        assert_eq!(d_exact, d_s);
        assert!((apl_exact - apl_s).abs() < 1e-9);
    }
}
