//! Balanced Dragonfly topology (Kim, Dally, Scott, Abts — ISCA'08).
//!
//! The "balanced, maximum capacity" variant used by the paper (Appendix A):
//! a single parameter `p` determines everything via `a = 2p`, `h = p`,
//! `g = a·h + 1` groups, so `Nr = a·g = 4p³ + 2p` and `k' = a − 1 + h =
//! 3p − 1`, diameter 3. Each group is a complete graph of `a` routers;
//! groups form a complete graph with exactly one global link per group pair.

use super::{LinkClass, TopoKind, Topology};

/// Builds a balanced Dragonfly from the single parameter `p`
/// (endpoints per router; `a = 2p` routers per group, `h = p` global links
/// per router).
pub fn dragonfly(p: u32) -> Topology {
    assert!(p >= 1, "dragonfly needs p >= 1");
    let a = 2 * p;
    let h = p;
    let g = a * h + 1; // number of groups
    let nr = (a * g) as usize;
    let rid = |group: u32, idx: u32| -> u32 { group * a + idx };
    let mut edges = Vec::new();
    // Intra-group complete graphs (local, copper).
    for grp in 0..g {
        for i in 0..a {
            for j in (i + 1)..a {
                edges.push((rid(grp, i), rid(grp, j), LinkClass::Short));
            }
        }
    }
    // Global links (fiber): group gi's global port t ∈ [0, g-1) connects to
    // group (t if t < gi else t+1); router owning port t is t / h. The
    // reverse port in the peer group is (gi if gi < gj else gi-1), giving
    // exactly one link per group pair.
    for gi in 0..g {
        for t in 0..(g - 1) {
            let gj = if t < gi { t } else { t + 1 };
            if gi < gj {
                let back = gi; // gi < gj so peer port index is gi
                let u = rid(gi, t / h);
                let v = rid(gj, back / h);
                edges.push((u, v, LinkClass::Long));
            }
        }
    }
    let mut topo = Topology::assemble(
        TopoKind::Dragonfly,
        format!("DF(p={p})"),
        nr,
        edges,
        Topology::uniform_concentration(nr, p),
        3,
    );
    // Maintenance domains: whole groups (one electrical/mechanical
    // enclosure per group in real Dragonfly deployments).
    topo.domains = (0..g).map(|grp| rid(grp, 0)..rid(grp, a - 1) + 1).collect();
    debug_assert_eq!(topo.network_radix() as u32, 3 * p - 1);
    topo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_v_counts() {
        // Table V: Nr = 4p³ + 2p, k' = 3p − 1, N = p·Nr.
        for p in [2u32, 3, 4] {
            let t = dragonfly(p);
            assert_eq!(t.num_routers() as u32, 4 * p * p * p + 2 * p, "p={p}");
            assert_eq!(t.network_radix() as u32, 3 * p - 1, "p={p}");
            assert!(t.graph.is_regular(), "p={p}");
            assert_eq!(t.num_endpoints() as u32, p * (4 * p * p * p + 2 * p));
        }
    }

    #[test]
    fn diameter_is_three() {
        let t = dragonfly(3);
        let (d, _) = t.graph.diameter_apl();
        assert_eq!(d, 3);
    }

    #[test]
    fn one_global_link_per_group_pair() {
        let p = 2;
        let t = dragonfly(p);
        let a = 2 * p;
        let g = a * p + 1;
        // Count global links between each pair of groups.
        let mut counts = std::collections::HashMap::new();
        for (u, v) in t.graph.edges() {
            let (gu, gv) = (u / a, v / a);
            if gu != gv {
                *counts.entry((gu.min(gv), gu.max(gv))).or_insert(0u32) += 1;
            }
        }
        assert_eq!(counts.len() as u32, g * (g - 1) / 2);
        assert!(counts.values().all(|&c| c == 1));
    }

    #[test]
    fn paper_config_p8() {
        // Table IV: DF with k'=23, Nr=2064, N=16512.
        let t = dragonfly(8);
        assert_eq!(t.num_routers(), 2064);
        assert_eq!(t.network_radix(), 23);
        assert_eq!(t.num_endpoints(), 16512);
    }
}
