//! Matrix-multiplication path counting (Appendix B).
//!
//! For adjacency matrix `A`, cell `(i,j)` of `A^l` counts length-`l` walks
//! from `i` to `j` (Theorem 1). We provide a dense saturating-`u64`
//! implementation for validation of the BFS-based counters, plus the
//! next-hop-set variant of Appendix B-1 used to bootstrap routing tables.

use fatpaths_net::graph::{Graph, RouterId};

/// Dense square matrix of saturating path counts.
#[derive(Clone, Debug, PartialEq)]
pub struct CountMatrix {
    n: usize,
    data: Vec<u64>,
}

impl CountMatrix {
    /// Adjacency matrix of `g` (1 where an edge exists).
    pub fn adjacency(g: &Graph) -> Self {
        let n = g.n();
        let mut data = vec![0u64; n * n];
        for u in 0..n as u32 {
            for &v in g.neighbors(u) {
                data[u as usize * n + v as usize] = 1;
            }
        }
        CountMatrix { n, data }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut data = vec![0u64; n * n];
        for i in 0..n {
            data[i * n + i] = 1;
        }
        CountMatrix { n, data }
    }

    /// Entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: RouterId, j: RouterId) -> u64 {
        self.data[i as usize * self.n + j as usize]
    }

    /// Saturating matrix product `self · other`.
    pub fn mul(&self, other: &CountMatrix) -> CountMatrix {
        assert_eq!(self.n, other.n);
        let n = self.n;
        let mut out = vec![0u64; n * n];
        for i in 0..n {
            for k in 0..n {
                let a = self.data[i * n + k];
                if a == 0 {
                    continue;
                }
                let row_k = &other.data[k * n..(k + 1) * n];
                let row_o = &mut out[i * n..(i + 1) * n];
                for (o, &b) in row_o.iter_mut().zip(row_k) {
                    *o = o.saturating_add(a.saturating_mul(b));
                }
            }
        }
        CountMatrix { n, data: out }
    }

    /// `A^l` by repeated multiplication (walk counts at exactly `l` steps).
    pub fn power(g: &Graph, l: u32) -> CountMatrix {
        let a = CountMatrix::adjacency(g);
        let mut acc = CountMatrix::identity(g.n());
        for _ in 0..l {
            acc = acc.mul(&a);
        }
        acc
    }
}

/// Number of *shortest* paths between all pairs via the matrix method: the
/// count in `A^lmin(i,j)` restricted to first-time reachability. Returns a
/// matrix `S` with `S[i][j]` = number of shortest `i→j` paths.
pub fn shortest_path_count_matrix(g: &Graph) -> CountMatrix {
    let n = g.n();
    let a = CountMatrix::adjacency(g);
    let mut reach = CountMatrix::identity(n); // walks of length ≤ current
    let mut seen: Vec<bool> = vec![false; n * n];
    let mut out = vec![0u64; n * n];
    for i in 0..n {
        seen[i * n + i] = true;
        out[i * n + i] = 1;
    }
    for _ in 0..n {
        reach = reach.mul(&a);
        let mut new_any = false;
        for idx in 0..n * n {
            if !seen[idx] && reach.data[idx] > 0 {
                seen[idx] = true;
                out[idx] = reach.data[idx];
                new_any = true;
            }
        }
        if !new_any {
            break;
        }
    }
    CountMatrix { n, data: out }
}

/// Next-hop sets via the iterated-adjacency scheme of Appendix B-1: for each
/// (source, destination), the set of first-hop ports that lie on *some*
/// minimal path. Returned as `sets[s][t]` = sorted port list.
pub fn minimal_next_hop_sets(g: &Graph) -> Vec<Vec<Vec<u32>>> {
    let n = g.n();
    let mut sets = vec![vec![Vec::new(); n]; n];
    for s in 0..n as u32 {
        let dist_from_s = g.bfs(s);
        for (port, &nb) in g.neighbors(s).iter().enumerate() {
            let dist_from_nb = g.bfs(nb);
            for t in 0..n as u32 {
                if s == t {
                    continue;
                }
                if dist_from_nb[t as usize] + 1 == dist_from_s[t as usize] {
                    sets[s as usize][t as usize].push(port as u32);
                }
            }
        }
    }
    sets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apsp::count_shortest_paths;

    #[test]
    fn theorem_1_walk_counts_on_triangle() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let a2 = CountMatrix::power(&g, 2);
        // Walks of length 2 from 0 to 0: 0-1-0 and 0-2-0.
        assert_eq!(a2.get(0, 0), 2);
        // 0 to 1 in 2 steps: 0-2-1 only.
        assert_eq!(a2.get(0, 1), 1);
    }

    #[test]
    fn matrix_matches_bfs_shortest_counts() {
        let t = fatpaths_net::topo::hyperx::hyperx(2, 3, 1);
        let m = shortest_path_count_matrix(&t.graph);
        for s in 0..t.num_routers() as u32 {
            let bfs = count_shortest_paths(&t.graph, s);
            for v in 0..t.num_routers() as u32 {
                assert_eq!(m.get(s, v), bfs[v as usize], "({s},{v})");
            }
        }
    }

    #[test]
    fn next_hop_sets_are_minimal() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]);
        let sets = minimal_next_hop_sets(&g);
        // 0→3: both ports of 0 (to 1 and to 2) lie on shortest paths.
        assert_eq!(sets[0][3], vec![0, 1]);
        // 0→1: only the direct port.
        assert_eq!(sets[0][1], vec![0]);
    }
}
