//! Interference-minimizing layer construction (Listing 2, §V-B3).
//!
//! Instead of sampling edges u.a.r., this variant *places paths*: router
//! pairs are processed in order of how few paths they have been assigned so
//! far, and each gets a minimum-weight path whose length lies in
//! `[Lmin, Lmax]`, where `Lmin` is one hop longer than the pair's minimal
//! distance — the "almost minimal" sweet spot the path-diversity analysis
//! (§IV) identifies. Edge weights `W` grow as paths are placed
//! (`W[vᵢ][vᵢ₊₁] += i·(len−1−i)`, center-loaded as in the listing), steering
//! later paths away from already-used links and thereby minimizing path
//! interference.
//!
//! As in the listing, a per-layer random permutation `π` restricts path
//! search to `π`-increasing edges (guaranteeing acyclicity of the placed
//! path system), shortcut edges between non-adjacent path routers are
//! masked for the rest of the layer, and a budget `M` bounds the paths per
//! layer. The resulting edge union is finally patched to connectivity so
//! that every layer admits a total forwarding function.

use crate::layers::{LayerConfig, LayerSet};
use fatpaths_net::graph::Graph;
use rand::prelude::*;
use rand::rngs::StdRng;
use rustc_hash::FxHashSet;

/// Configuration of the interference-minimizing construction.
#[derive(Clone, Copy, Debug)]
pub struct ImConfig {
    /// Total number of layers including the complete layer 0.
    pub n_layers: usize,
    /// Extra hops over the pair's minimal distance for `Lmin`
    /// (the paper prefers `+1`).
    pub lmin_extra: u32,
    /// Path-length slack: `Lmax = Lmin + lmax_slack`.
    pub lmax_slack: u32,
    /// Budget `M`: maximum paths placed per layer, as a multiple of `Nr`.
    pub paths_per_router: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ImConfig {
    fn default() -> Self {
        ImConfig {
            n_layers: 4,
            lmin_extra: 1,
            lmax_slack: 1,
            paths_per_router: 3.0,
            seed: 0,
        }
    }
}

/// Builds layers with the Listing 2 interference-minimizing heuristic.
pub fn build_interference_min_layers(base: &Graph, cfg: &ImConfig) -> LayerSet {
    assert!(cfg.n_layers >= 1);
    assert!(base.is_connected());
    let nr = base.n();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Global edge weights W, shared across layers (Listing 2 line 5).
    let edge_index = base.edge_index_map();
    let mut weights = vec![0u64; base.m()];
    // Paths placed per (unordered) pair so far — the priority key.
    let mut pair_paths: rustc_hash::FxHashMap<(u32, u32), u32> = rustc_hash::FxHashMap::default();
    // Base distances for Lmin; computed lazily per source and cached.
    let mut base_dist: Vec<Option<Vec<u32>>> = vec![None; nr];
    let budget = ((cfg.paths_per_router * nr as f64) as usize).max(1);

    let mut graphs = Vec::with_capacity(cfg.n_layers);
    graphs.push(base.clone());
    for _layer in 1..cfg.n_layers {
        let mut pi: Vec<u32> = (0..nr as u32).collect();
        pi.shuffle(&mut rng);
        let mut rank = vec![0u32; nr];
        for (i, &v) in pi.iter().enumerate() {
            rank[v as usize] = i as u32;
        }
        let layer_edges = create_layer(
            base,
            &rank,
            &edge_index,
            &mut weights,
            &mut pair_paths,
            &mut base_dist,
            budget,
            cfg,
            &mut rng,
        );
        graphs.push(patch_connected(base, layer_edges, &weights, &edge_index));
    }
    LayerSet { graphs }
}

#[allow(clippy::too_many_arguments)]
fn create_layer(
    base: &Graph,
    rank: &[u32],
    edge_index: &rustc_hash::FxHashMap<(u32, u32), u32>,
    weights: &mut [u64],
    pair_paths: &mut rustc_hash::FxHashMap<(u32, u32), u32>,
    base_dist: &mut [Option<Vec<u32>>],
    budget: usize,
    cfg: &ImConfig,
    rng: &mut StdRng,
) -> FxHashSet<(u32, u32)> {
    let nr = base.n();
    // Eligible pairs: π(u) < π(v). Sort by (paths placed, random tiebreak)
    // ascending — the priority-queue semantics of Listing 2.
    let sample = (budget * 4).min(nr * (nr - 1) / 2);
    let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(sample);
    // Draw a deterministic sample of pairs rather than materializing all
    // O(Nr²) of them on large instances.
    let mut seen = FxHashSet::default();
    while pairs.len() < sample {
        let u = rng.random_range(0..nr as u32);
        let v = rng.random_range(0..nr as u32);
        if u == v {
            continue;
        }
        let (u, v) = if rank[u as usize] < rank[v as usize] {
            (u, v)
        } else {
            (v, u)
        };
        if seen.insert((u, v)) {
            pairs.push((u, v));
        }
        if seen.len() >= nr * (nr - 1) / 2 {
            break;
        }
    }
    pairs.sort_by_key(|&(u, v)| (*pair_paths.get(&key(u, v)).unwrap_or(&0), fnv_pair(u, v)));

    let mut layer: FxHashSet<(u32, u32)> = FxHashSet::default();
    // Per-layer masked shortcut edges (incidenceG in the listing).
    let mut masked: FxHashSet<(u32, u32)> = FxHashSet::default();
    let mut placed = 0usize;
    for &(u, v) in &pairs {
        if placed >= budget {
            break;
        }
        let dist_u = base_dist[u as usize]
            .get_or_insert_with(|| base.bfs(u))
            .clone();
        let dmin = dist_u[v as usize];
        if dmin == u32::MAX {
            continue;
        }
        let lmin = dmin + cfg.lmin_extra;
        let lmax = lmin + cfg.lmax_slack;
        if let Some(path) = find_path(base, rank, &masked, weights, edge_index, u, v, lmin, lmax) {
            placed += 1;
            let len = path.len() - 1;
            for (i, w) in path.windows(2).enumerate() {
                layer.insert(key(w[0], w[1]));
                // Listing 2 line 47: center-loaded weight increase.
                let e = edge_index[&key(w[0], w[1])] as usize;
                weights[e] += (i * (len - 1 - i)) as u64;
            }
            *pair_paths.entry(key(u, v)).or_insert(0) += 1;
            // Mask shortcut edges between non-adjacent path routers.
            for i in 0..path.len() {
                for j in (i + 2)..path.len() {
                    if base.has_edge(path[i], path[j]) {
                        masked.insert(key(path[i], path[j]));
                    }
                }
            }
        }
    }
    layer
}

#[inline]
fn key(u: u32, v: u32) -> (u32, u32) {
    (u.min(v), u.max(v))
}

#[inline]
fn fnv_pair(u: u32, v: u32) -> u64 {
    crate::fwd::fnv1a(((u as u64) << 32) | v as u64)
}

/// Minimum-weight `π`-increasing path from `u` to `v` with hop count in
/// `[lmin, lmax]`, avoiding masked edges. DP over (hops, router):
/// `O(lmax · m)`.
#[allow(clippy::too_many_arguments)]
fn find_path(
    base: &Graph,
    rank: &[u32],
    masked: &FxHashSet<(u32, u32)>,
    weights: &[u64],
    edge_index: &rustc_hash::FxHashMap<(u32, u32), u32>,
    u: u32,
    v: u32,
    lmin: u32,
    lmax: u32,
) -> Option<Vec<u32>> {
    let nr = base.n();
    const INF: u64 = u64::MAX;
    // cost[h][x], parent[h][x]
    let mut cost = vec![vec![INF; nr]; (lmax + 1) as usize];
    let mut parent = vec![vec![u32::MAX; nr]; (lmax + 1) as usize];
    cost[0][u as usize] = 0;
    let mut frontier = vec![u];
    for h in 0..lmax as usize {
        let mut next_frontier = Vec::new();
        for &x in &frontier {
            let cx = cost[h][x as usize];
            if cx == INF {
                continue;
            }
            for &y in base.neighbors(x) {
                // π-increasing edges only (acyclicity), skip masked.
                if rank[y as usize] <= rank[x as usize] {
                    continue;
                }
                if masked.contains(&key(x, y)) {
                    continue;
                }
                let w = weights[edge_index[&key(x, y)] as usize] + 1;
                let cand = cx.saturating_add(w);
                if cand < cost[h + 1][y as usize] {
                    if cost[h + 1][y as usize] == INF {
                        next_frontier.push(y);
                    }
                    cost[h + 1][y as usize] = cand;
                    parent[h + 1][y as usize] = x;
                }
            }
        }
        frontier = next_frontier;
    }
    // Pick the cheapest arrival with hop count in [lmin, lmax].
    let mut best: Option<(u64, usize)> = None;
    for (h, row) in cost
        .iter()
        .enumerate()
        .take(lmax as usize + 1)
        .skip(lmin as usize)
    {
        let c = row[v as usize];
        if c != INF && best.map(|(bc, _)| c < bc).unwrap_or(true) {
            best = Some((c, h));
        }
    }
    let (_, h) = best?;
    let mut path = vec![v];
    let mut cur = v;
    let mut hh = h;
    while cur != u {
        cur = parent[hh][cur as usize];
        hh -= 1;
        path.push(cur);
    }
    path.reverse();
    Some(path)
}

/// Ensures the placed edge set forms a connected spanning subgraph by
/// adding the lightest unused base edges that bridge components.
fn patch_connected(
    base: &Graph,
    mut edges: FxHashSet<(u32, u32)>,
    weights: &[u64],
    edge_index: &rustc_hash::FxHashMap<(u32, u32), u32>,
) -> Graph {
    loop {
        let list: Vec<(u32, u32)> = edges.iter().copied().collect();
        let g = Graph::from_edges(base.n(), &list);
        let labels = components(&g);
        let ncomp = *labels.iter().max().unwrap() + 1;
        if ncomp == 1 {
            return g;
        }
        // Lightest bridge per component pair this round.
        let mut best: rustc_hash::FxHashMap<(u32, u32), ((u32, u32), u64)> =
            rustc_hash::FxHashMap::default();
        for (u, v) in base.edges() {
            let (cu, cv) = (labels[u as usize], labels[v as usize]);
            if cu == cv {
                continue;
            }
            let ck = (cu.min(cv), cu.max(cv));
            let w = weights[edge_index[&(u, v)] as usize];
            let entry = best.entry(ck).or_insert(((u, v), w));
            if w < entry.1 {
                *entry = ((u, v), w);
            }
        }
        for (edge, _) in best.values() {
            edges.insert(*edge);
        }
    }
}

fn components(g: &Graph) -> Vec<u32> {
    let n = g.n();
    let mut label = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut stack = Vec::new();
    for s in 0..n as u32 {
        if label[s as usize] != u32::MAX {
            continue;
        }
        label[s as usize] = next;
        stack.push(s);
        while let Some(u) = stack.pop() {
            for &v in g.neighbors(u) {
                if label[v as usize] == u32::MAX {
                    label[v as usize] = next;
                    stack.push(v);
                }
            }
        }
        next += 1;
    }
    label
}

/// Convenience: builds interference-minimizing layers with the same knobs
/// as [`crate::layers::build_random_layers`] (ρ is ignored — density falls
/// out of the path budget).
pub fn build_from_layer_config(base: &Graph, cfg: &LayerConfig) -> LayerSet {
    build_interference_min_layers(
        base,
        &ImConfig {
            n_layers: cfg.n_layers,
            seed: cfg.seed,
            ..ImConfig::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fatpaths_net::topo::slimfly::slim_fly;

    #[test]
    fn layers_connected_and_subgraphs() {
        let t = slim_fly(7, 1).unwrap();
        let ls = build_interference_min_layers(
            &t.graph,
            &ImConfig {
                n_layers: 4,
                seed: 3,
                ..ImConfig::default()
            },
        );
        assert_eq!(ls.len(), 4);
        assert!(ls.validate(&t.graph));
    }

    #[test]
    fn placed_paths_are_almost_minimal() {
        // Sparse layers should host paths mostly lmin+1 long for sampled
        // pairs (that is what the heuristic places).
        let t = slim_fly(7, 1).unwrap();
        let ls = build_interference_min_layers(
            &t.graph,
            &ImConfig {
                n_layers: 3,
                seed: 5,
                ..ImConfig::default()
            },
        );
        let rt = crate::fwd::RoutingTables::build(&t.graph, &ls);
        let mut within = 0;
        let mut total = 0;
        for s in (0..98u32).step_by(11) {
            let d = t.graph.bfs(s);
            for v in (1..98u32).step_by(7) {
                if s == v {
                    continue;
                }
                if let Some(dl) = rt.layer_distance(1, s, v) {
                    total += 1;
                    if dl <= d[v as usize] + 2 {
                        within += 1;
                    }
                }
            }
        }
        assert!(
            within * 10 >= total * 7,
            "{within}/{total} paths near-minimal"
        );
    }

    #[test]
    fn deterministic() {
        let t = slim_fly(5, 1).unwrap();
        let cfg = ImConfig {
            n_layers: 3,
            seed: 8,
            ..ImConfig::default()
        };
        let a = build_interference_min_layers(&t.graph, &cfg);
        let b = build_interference_min_layers(&t.graph, &cfg);
        for (x, y) in a.graphs.iter().zip(&b.graphs) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn weight_spreading_diversifies_edges() {
        // The union of sparse layers should cover a sizable fraction of the
        // base edges (the heuristic avoids reusing hot edges).
        let t = slim_fly(7, 1).unwrap();
        let ls = build_interference_min_layers(
            &t.graph,
            &ImConfig {
                n_layers: 5,
                seed: 1,
                ..ImConfig::default()
            },
        );
        let mut used = FxHashSet::default();
        for g in &ls.graphs[1..] {
            for e in g.edges() {
                used.insert(e);
            }
        }
        assert!(
            used.len() * 2 >= t.graph.m(),
            "{} of {}",
            used.len(),
            t.graph.m()
        );
    }
}
