//! Simple queueing-model FCT predictions — the reference line of Fig. 15
//! ("FatPaths results are close to predictions from a simple queueing
//! model"; the paper omits the model details for space, so we provide the
//! two standard candidates and document the choice).
//!
//! The access link is modeled as a single server at utilization
//! `ρ = λ·E[S]`:
//!
//! * **M/M/1-PS** (processor sharing, the classic TCP fair-sharing model):
//!   a job of service time `S` has expected sojourn `S / (1 − ρ)` —
//!   insensitive to the size distribution;
//! * **M/D/1 FCFS** mean waiting time `W = ρ·S̄ / (2(1 − ρ))` added to the
//!   service time, for the deterministic-service view of fixed-size flows.

/// Inputs: per-flow service time `service_s` (size / line rate), arrival
/// rate `lambda` (flows/s at the bottleneck), mean service time
/// `mean_service_s` of the flow mix.
#[derive(Clone, Copy, Debug)]
pub struct QueueModel {
    /// Arrival rate at the bottleneck link (flows per second).
    pub lambda: f64,
    /// Mean service time of the flow mix (seconds).
    pub mean_service_s: f64,
}

impl QueueModel {
    /// Utilization `ρ = λ·E[S]`, clamped below 1 for stability.
    pub fn utilization(&self) -> f64 {
        (self.lambda * self.mean_service_s).min(0.99)
    }

    /// M/M/1-PS sojourn prediction for a flow needing `service_s` of link
    /// time: `S / (1 − ρ)`.
    pub fn mm1_ps_fct(&self, service_s: f64) -> f64 {
        service_s / (1.0 - self.utilization())
    }

    /// M/D/1 FCFS prediction: service + mean queueing wait
    /// `ρ·S̄ / (2(1 − ρ))`.
    pub fn md1_fct(&self, service_s: f64) -> f64 {
        let rho = self.utilization();
        service_s + rho * self.mean_service_s / (2.0 * (1.0 - rho))
    }

    /// The p-quantile sojourn of M/M/1-PS is approximately exponential in
    /// the PS context; we expose the standard M/M/1 sojourn quantile
    /// `−ln(1−p)·S̄/(1−ρ)` as a tail reference.
    pub fn mm1_fct_quantile(&self, p: f64) -> f64 {
        assert!((0.0..1.0).contains(&p));
        -(1.0 - p).ln() * self.mean_service_s / (1.0 - self.utilization())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_load_is_pure_service() {
        let m = QueueModel {
            lambda: 0.0,
            mean_service_s: 0.001,
        };
        assert_eq!(m.mm1_ps_fct(0.002), 0.002);
        assert_eq!(m.md1_fct(0.002), 0.002);
    }

    #[test]
    fn sojourn_grows_with_load() {
        let lo = QueueModel {
            lambda: 100.0,
            mean_service_s: 0.001,
        };
        let hi = QueueModel {
            lambda: 800.0,
            mean_service_s: 0.001,
        };
        assert!(hi.mm1_ps_fct(0.001) > lo.mm1_ps_fct(0.001));
        assert!(hi.md1_fct(0.001) > lo.md1_fct(0.001));
    }

    #[test]
    fn ps_at_half_load_doubles() {
        let m = QueueModel {
            lambda: 500.0,
            mean_service_s: 0.001,
        };
        assert!((m.mm1_ps_fct(0.001) - 0.002).abs() < 1e-12);
    }

    #[test]
    fn quantiles_monotone() {
        let m = QueueModel {
            lambda: 300.0,
            mean_service_s: 0.001,
        };
        assert!(m.mm1_fct_quantile(0.99) > m.mm1_fct_quantile(0.5));
    }
}
