//! Property-based tests for the FIB compression invariants: over
//! randomly sampled layered schemes and topologies, the aggregated
//! compile mode must forward every `(switch, layer, destination)`
//! exactly like host routes (aggregation merges state, never changes
//! it), and compression must never *increase* entry count.

use fatpaths_core::fwd::RoutingTables;
use fatpaths_core::layers::{build_random_layers, LayerConfig};
use fatpaths_fib::{compile, CompileMode};
use fatpaths_net::topo::Topology;
use proptest::prelude::*;

/// The two structurally opposite families: irregular SF (host-route
/// shaped) and the fat tree (aggregation collapses whole pods).
fn topo_for(pick: u8) -> Topology {
    if pick.is_multiple_of(2) {
        fatpaths_net::topo::slimfly::slim_fly(5, 2).unwrap()
    } else {
        fatpaths_net::topo::fattree::fat_tree(4, 2)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn aggregated_fib_forwards_identically_and_never_grows(
        pick in 0u8..4,
        n_layers in 2usize..5,
        rho_pct in 45u32..85,
        seed in 0u64..50_000,
    ) {
        let topo = topo_for(pick);
        let ls = build_random_layers(
            &topo.graph,
            &LayerConfig::new(n_layers, rho_pct as f64 / 100.0, seed),
        );
        let rt = RoutingTables::build(&topo.graph, &ls);
        let host = compile(&topo, &rt, CompileMode::HostRoutes);
        let agg = compile(&topo, &rt, CompileMode::Aggregated);
        let (hs, ags) = (host.stats(), agg.stats());

        // Compression never increases entry count, globally or on any
        // single switch, and never touches the raw (host-route) count.
        prop_assert_eq!(hs.raw_entries, ags.raw_entries);
        prop_assert!(ags.entries_total <= hs.entries_total);
        prop_assert!(ags.entries_max <= hs.entries_max);
        for r in 0..topo.num_routers() as u32 {
            prop_assert!(
                agg.switch(r).num_entries() <= host.switch(r).num_entries(),
                "switch {} grew under aggregation", r
            );
            // Group tables are shared state, untouched by rule merging.
            prop_assert_eq!(
                agg.switch(r).num_groups(),
                host.switch(r).num_groups()
            );
        }

        // Aggregation preserves forwarding exactly: every (switch,
        // layer, destination endpoint) resolves to the same port set.
        for at in 0..topo.num_routers() as u32 {
            for layer in 0..host.tag_space() {
                for ep in (0..topo.num_endpoints() as u32).step_by(3) {
                    let h = host.lookup(at, layer, ep);
                    let a = agg.lookup(at, layer, ep);
                    prop_assert_eq!(
                        h.map(|p| p.as_slice()),
                        a.map(|p| p.as_slice()),
                        "switch {} layer {} ep {}", at, layer, ep
                    );
                }
            }
        }
    }
}
