//! Topology/cost explorer: prints Table V-style structure parameters and
//! the Fig. 10 cost breakdown for every topology at a chosen size class.
//!
//! ```text
//! cargo run --release --example topology_explorer [small|medium]
//! ```

use fatpaths::net::cost::{cost, PriceBook};
use fatpaths::prelude::*;

fn main() {
    let class = match std::env::args().nth(1).as_deref() {
        Some("medium") => SizeClass::Medium,
        _ => SizeClass::Small,
    };
    let prices = PriceBook::default();
    println!(
        "{:<22} {:>7} {:>8} {:>4} {:>4} {:>3} {:>6} {:>9} {:>10}",
        "topology", "routers", "endpts", "k'", "p", "D", "d", "$/endpt", "density"
    );
    for kind in fatpaths::net::classes::evaluated_kinds() {
        let t = build(kind, class, 1);
        let (d, apl) = if t.num_routers() <= 2500 {
            t.graph.diameter_apl()
        } else {
            t.graph.diameter_apl_sampled(64)
        };
        let c = cost(&t, &prices);
        println!(
            "{:<22} {:>7} {:>8} {:>4} {:>4} {:>3} {:>6.2} {:>9.0} {:>10.2}",
            t.name,
            t.num_routers(),
            t.num_endpoints(),
            t.network_radix(),
            t.concentration.iter().max().unwrap(),
            d,
            apl,
            c.per_endpoint(t.num_endpoints()),
            t.edge_density(),
        );
    }
    println!(
        "\nLower diameter → shorter paths → fewer cables per endpoint for the\n\
         same delivered bandwidth: the premise of the low-diameter families (§I)."
    );
}
