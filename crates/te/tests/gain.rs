//! The headline acceptance pin: on low-diameter topologies under an
//! adversarial matrix, negotiated TE tables achieve strictly higher
//! throughput than the static FatPaths tables they start from — at the
//! same layer budget, under the same equal-flowlet-split demand model,
//! against the same `fatpaths-mcf` upper bound (which cancels in the
//! comparison but is asserted sane).

use fatpaths_core::fwd::RoutingTables;
use fatpaths_core::layers::{build_random_layers, LayerConfig};
use fatpaths_net::topo::Topology;
use fatpaths_te::{achieved_throughput, edge_loads, endpoint_demands, TeConfig, TeScheme};
use fatpaths_workloads::matrices::{matrix_flows, MatrixSpec};

fn gain_on(topo: &Topology, n_layers: usize, layer_seed: u64, matrix_seed: u64) -> (f64, f64) {
    let ls = build_random_layers(&topo.graph, &LayerConfig::new(n_layers, 0.6, layer_seed));
    let rt = RoutingTables::build(&topo.graph, &ls);
    let flows = matrix_flows(topo, &MatrixSpec::WorstCase { intensity: 0.7 }, matrix_seed);
    let demands = endpoint_demands(topo, &flows);
    assert!(!demands.is_empty());
    let te = TeScheme::negotiate(&topo.graph, &rt, &demands, &TeConfig::default());
    let static_t = achieved_throughput(&edge_loads(&rt, &topo.graph, &demands));
    let te_t = achieved_throughput(&edge_loads(&te, &topo.graph, &demands));
    // Negotiation keeps the best iteration and iteration 0 is the static
    // tables, so TE can never be worse; the pin below demands strictly
    // better.
    assert!(
        te_t >= static_t,
        "{}: TE ({te_t}) fell below its own starting point ({static_t})",
        topo.name
    );
    (te_t, static_t)
}

#[test]
fn te_strictly_beats_static_fatpaths_on_slim_fly() {
    let topo = fatpaths_net::topo::slimfly::slim_fly(5, 2).unwrap();
    let (te_t, static_t) = gain_on(&topo, 5, 7, 3);
    assert!(
        te_t > static_t,
        "SF: TE {te_t} must strictly beat static {static_t}"
    );
}

#[test]
fn te_strictly_beats_static_fatpaths_on_fat_tree() {
    let topo = fatpaths_net::topo::fattree::fat_tree(4, 1);
    let (te_t, static_t) = gain_on(&topo, 5, 7, 3);
    assert!(
        te_t > static_t,
        "FT3: TE {te_t} must strictly beat static {static_t}"
    );
}

#[test]
fn te_ratio_against_upper_bound_is_sane() {
    let topo = fatpaths_net::topo::slimfly::slim_fly(5, 2).unwrap();
    let ls = build_random_layers(&topo.graph, &LayerConfig::new(5, 0.6, 7));
    let rt = RoutingTables::build(&topo.graph, &ls);
    let flows = matrix_flows(&topo, &MatrixSpec::WorstCase { intensity: 0.7 }, 3);
    let demands = endpoint_demands(&topo, &flows);
    let upper = fatpaths_mcf::throughput_upper_bound(&topo, &demands);
    assert!(upper.is_finite() && upper > 0.0);
    let te = TeScheme::negotiate(&topo.graph, &rt, &demands, &TeConfig::default());
    let ratio = achieved_throughput(&edge_loads(&te, &topo.graph, &demands)) / upper;
    // The k-path relaxation is near-optimal; a fixed-tree scheme under
    // equal split must land in a sane band around it.
    assert!(ratio > 0.1 && ratio < 1.6, "ratio {ratio} out of band");
}
