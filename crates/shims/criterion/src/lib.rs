//! Offline shim for `criterion`: the `Criterion` / `BenchmarkGroup` /
//! `Bencher` API surface this workspace's benches use, backed by a small
//! wall-clock harness (short warmup, fixed sample count, prints
//! min/median/max per benchmark). No statistics, plots, or baselines —
//! swap the real crate back in for those.

use std::fmt::Display;
use std::time::Instant;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            samples: 10,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(name, 10, f);
        self
    }
}

/// A named group sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name), self.samples, f);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.samples,
            times_ns: Vec::new(),
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.0), &b.times_ns);
        self
    }

    /// Ends the group (formatting parity with criterion).
    pub fn finish(self) {}
}

/// Identifier for parameterized benchmarks.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

/// Timing harness handed to the bench closure.
pub struct Bencher {
    samples: usize,
    times_ns: Vec<u128>,
}

impl Bencher {
    /// Times `routine` once per sample after one untimed warmup run.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine());
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.times_ns.push(t0.elapsed().as_nanos());
        }
    }
}

fn run_one<F: FnOnce(&mut Bencher)>(name: &str, samples: usize, f: F) {
    let mut b = Bencher {
        samples,
        times_ns: Vec::new(),
    };
    f(&mut b);
    report(name, &b.times_ns);
}

fn report(name: &str, times_ns: &[u128]) {
    if times_ns.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let mut t = times_ns.to_vec();
    t.sort_unstable();
    let fmt = |ns: u128| -> String {
        if ns >= 1_000_000_000 {
            format!("{:.3} s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            format!("{:.3} ms", ns as f64 / 1e6)
        } else {
            format!("{:.3} µs", ns as f64 / 1e3)
        }
    };
    println!(
        "{name:<48} min {:>12}  median {:>12}  max {:>12}  ({} samples)",
        fmt(t[0]),
        fmt(t[t.len() / 2]),
        fmt(t[t.len() - 1]),
        t.len()
    );
}

/// Re-export parity: criterion's `black_box` (std's since 1.66).
pub use std::hint::black_box;

/// Declares a group-runner function invoking each target with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &k| {
            b.iter(|| (0..100u64 * k).sum::<u64>())
        });
        g.finish();
    }
}
