//! Three-stage fat tree (folded Clos) — Leiserson's CM-5 network as
//! commoditized by Al-Fares et al. (SIGCOMM'08).
//!
//! For even radix `k`: `k` pods, each with `k/2` edge and `k/2` aggregation
//! routers; `(k/2)²` core routers. Full bisection attaches `k/2` endpoints
//! per edge router (`N = k³/4`); the paper's performance comparisons use
//! 2×-oversubscribed fat trees (`k` endpoints per edge router) to match the
//! cost of the low-diameter networks (§VII-A1).

use super::{LinkClass, TopoKind, Topology};

/// Builds a 3-stage fat tree of radix `k` (must be even) with
/// `oversubscription ∈ {1, 2, …}` endpoints-per-uplink ratio at the edge:
/// each edge router hosts `oversubscription · k/2` endpoints.
///
/// Router id layout: edge routers `[0, k²/2)` (pod-major), aggregation
/// `[k²/2, k²)`, core `[k², k² + k²/4)`.
pub fn fat_tree(k: u32, oversubscription: u32) -> Topology {
    assert!(k >= 2 && k.is_multiple_of(2), "fat tree radix must be even");
    assert!(oversubscription >= 1);
    let half = k / 2;
    let pods = k;
    let edge_count = pods * half;
    let agg_count = pods * half;
    let core_count = half * half;
    let nr = (edge_count + agg_count + core_count) as usize;
    let edge_id = |pod: u32, i: u32| pod * half + i;
    let agg_id = |pod: u32, j: u32| edge_count + pod * half + j;
    let core_id = |j: u32, c: u32| edge_count + agg_count + j * half + c;
    let mut edges = Vec::new();
    for pod in 0..pods {
        for i in 0..half {
            for j in 0..half {
                edges.push((edge_id(pod, i), agg_id(pod, j), LinkClass::Short));
            }
        }
        // Aggregation router j of every pod connects to core group j.
        for j in 0..half {
            for c in 0..half {
                edges.push((agg_id(pod, j), core_id(j, c), LinkClass::Long));
            }
        }
    }
    let p_edge = oversubscription * half;
    let mut conc = vec![0u32; nr];
    conc[..edge_count as usize].fill(p_edge);
    let mut topo = Topology::assemble(
        TopoKind::FatTree,
        format!("FT3(k={k},os={oversubscription})"),
        nr,
        edges,
        conc,
        4,
    );
    // Maintenance domains: each pod's aggregation layer — the routers a
    // rolling firmware upgrade walks together, and whose loss cuts the
    // pod's only uplinks.
    topo.domains = (0..pods)
        .map(|pod| agg_id(pod, 0)..agg_id(pod, half - 1) + 1)
        .collect();
    topo
}

/// Number of edge routers of a radix-`k` fat tree (`k²/2`).
pub fn edge_router_count(k: u32) -> u32 {
    k * k / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_v_counts_full_bisection() {
        // Table V: Nr = 5⌊k²/4⌋, N = ⌊k²/2⌋ · k/2 = k³/4.
        for k in [4u32, 8, 12] {
            let t = fat_tree(k, 1);
            assert_eq!(t.num_routers() as u32, 5 * k * k / 4, "k={k}");
            assert_eq!(t.num_endpoints() as u32, k * k * k / 4, "k={k}");
        }
    }

    #[test]
    fn diameter_four_and_radix() {
        let t = fat_tree(8, 1);
        let (d, _) = t.graph.diameter_apl();
        assert_eq!(d, 4);
        // Edge routers: k/2 uplinks; agg: k; core: k.
        assert_eq!(t.graph.degree(0), 4); // edge: k/2 = 4 uplinks
        assert_eq!(t.graph.degree(8 * 8 / 2), 8); // agg: k
        assert_eq!(t.graph.degree(8 * 8), 8); // core: k
    }

    #[test]
    fn paper_config_k36() {
        // Table IV: FT3 with k'=18 (edge uplinks), Nr=1620, N=11664.
        let t = fat_tree(36, 1);
        assert_eq!(t.num_routers(), 1620);
        assert_eq!(t.num_endpoints(), 11664);
        assert_eq!(t.graph.degree(0), 18);
    }

    #[test]
    fn oversubscription_doubles_endpoints() {
        let t1 = fat_tree(8, 1);
        let t2 = fat_tree(8, 2);
        assert_eq!(t2.num_endpoints(), 2 * t1.num_endpoints());
        assert_eq!(t2.graph.m(), t1.graph.m());
    }

    #[test]
    fn intra_pod_paths_shorter_than_inter_pod() {
        let t = fat_tree(4, 1);
        let d = t.graph.bfs(0);
        // Edge 0 and edge 1 share pod 0: distance 2 (via agg).
        assert_eq!(d[1], 2);
        // Edge of another pod: distance 4 (edge-agg-core-agg-edge).
        assert_eq!(d[2], 4);
    }
}
