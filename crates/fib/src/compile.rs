//! The FIB compiler: enumerates a scheme's forwarding function and
//! materializes it as per-switch prefix rules + interned ECMP groups.
//!
//! For every switch `r`, layer tag `l`, and destination router `t` that
//! hosts endpoints, the compiler asks
//! [`RoutingScheme::candidate_ports`]`(l, r, t)` and stores the answer
//! as a rule mapping `t`'s endpoint-id range to an ECMP group. In
//! [`CompileMode::Aggregated`] a run-length pass merges adjacent
//! destination ranges resolving to the same group into one rule —
//! router-major endpoint numbering makes structural domains (fat-tree
//! pods, Dragonfly groups, HyperX rows) contiguous, so the merge is the
//! prefix aggregation §V-E relies on without any per-topology special
//! cases. Destinations with an empty candidate set get **no** rule
//! (lookup miss = unreachable), and local delivery (`t == r`) is the
//! switch's endpoint ports, not network FIB state.
//!
//! Switch rows compile independently and in parallel on the shim pool;
//! output is a pure function of `(topology, scheme, mode)`, so compiled
//! tables are bit-identical at any thread count.
//!
//! [`RoutingScheme::candidate_ports`]: fatpaths_core::scheme::RoutingScheme::candidate_ports

use crate::table::{Fib, FibEntry, SwitchFib};
use fatpaths_core::scheme::RoutingScheme;
use fatpaths_net::topo::Topology;
use rayon::prelude::*;
use rustc_hash::FxHashMap;

/// How destination rules are laid out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompileMode {
    /// One rule per reachable `(layer, destination router)` — the
    /// uncompressed floor every switch could always fall back to.
    HostRoutes,
    /// Adjacent destination ranges sharing an ECMP group merge into one
    /// rule (run-length aggregation over the endpoint address space).
    Aggregated,
}

impl CompileMode {
    /// Stable label for CSV rows.
    pub fn label(self) -> &'static str {
        match self {
            CompileMode::HostRoutes => "host",
            CompileMode::Aggregated => "agg",
        }
    }
}

/// Compiles `scheme` on `topo` into per-switch forwarding state.
pub fn compile<S: RoutingScheme + Sync + ?Sized>(
    topo: &Topology,
    scheme: &S,
    mode: CompileMode,
) -> Fib {
    let nr = topo.num_routers();
    let tag_space = scheme.tag_space().max(1);
    // Destination routers that host endpoints, ascending — the only
    // routers packets are ever destined to (fat-tree aggregation/core
    // routers carry no rules, exactly like their real counterparts).
    let dsts: Vec<u32> = (0..nr as u32)
        .filter(|&r| !topo.router_endpoints(r).is_empty())
        .collect();
    let per_switch: Vec<(SwitchFib, u64)> = (0..nr as u32)
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|r| compile_switch(topo, scheme, mode, r, tag_space, &dsts))
        .collect();
    let mut switches = Vec::with_capacity(nr);
    let mut raw_entries = 0u64;
    for (sf, raw) in per_switch {
        switches.push(sf);
        raw_entries += raw;
    }
    let mut endpoint_offset = Vec::with_capacity(nr + 1);
    endpoint_offset.push(0u32);
    for r in 0..nr as u32 {
        endpoint_offset.push(topo.router_endpoints(r).end);
    }
    Fib {
        switches,
        endpoint_offset,
        tag_space,
        raw_entries,
        mode,
    }
}

/// Compiles one switch's rows; returns the table and its host-route
/// (pre-aggregation) rule count.
fn compile_switch<S: RoutingScheme + Sync + ?Sized>(
    topo: &Topology,
    scheme: &S,
    mode: CompileMode,
    r: u32,
    tag_space: usize,
    dsts: &[u32],
) -> (SwitchFib, u64) {
    let mut groups: Vec<fatpaths_core::scheme::PortSet> = Vec::new();
    let mut intern: FxHashMap<Vec<u16>, u32> = FxHashMap::default();
    let mut layers = Vec::with_capacity(tag_space);
    let mut raw = 0u64;
    for l in 0..tag_space {
        let mut rules: Vec<FibEntry> = Vec::new();
        for &t in dsts {
            if t == r {
                continue;
            }
            let ports = scheme.candidate_ports(l as u8, r, t);
            if ports.is_empty() {
                continue; // no rule: lookup miss = unreachable
            }
            raw += 1;
            let gid = *intern.entry(ports.as_slice().to_vec()).or_insert_with(|| {
                groups.push(ports.clone());
                (groups.len() - 1) as u32
            });
            let range = topo.router_endpoints(t);
            match rules.last_mut() {
                // Run-length merge: contiguous address range, same group.
                Some(prev)
                    if mode == CompileMode::Aggregated
                        && prev.hi == range.start
                        && prev.group == gid =>
                {
                    prev.hi = range.end;
                }
                _ => rules.push(FibEntry {
                    lo: range.start,
                    hi: range.end,
                    group: gid,
                }),
            }
        }
        layers.push(rules);
    }
    (SwitchFib { layers, groups }, raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBudget;
    use fatpaths_core::ecmp::DistanceMatrix;
    use fatpaths_core::fwd::RoutingTables;
    use fatpaths_core::layers::{build_random_layers, LayerConfig};
    use fatpaths_core::scheme::MinimalScheme;
    use fatpaths_net::topo::fattree::fat_tree;
    use fatpaths_net::topo::slimfly::slim_fly;

    #[test]
    fn host_routes_count_matches_reachable_pairs() {
        let t = slim_fly(5, 2).unwrap();
        let ls = build_random_layers(&t.graph, &LayerConfig::new(3, 0.6, 1));
        let rt = RoutingTables::build(&t.graph, &ls);
        let fib = compile(&t, &rt, CompileMode::HostRoutes);
        let nr = t.num_routers() as u64;
        // Every pair reachable in every layer (fallback to layer 0), so
        // raw = stored = layers · nr · (nr − 1).
        let st = fib.stats();
        assert_eq!(st.raw_entries, 3 * nr * (nr - 1));
        assert_eq!(st.entries_total, st.raw_entries);
        assert_eq!(st.compression, 1.0);
        assert_eq!(fib.tag_space(), 3);
    }

    #[test]
    fn aggregation_compresses_fat_tree_up_routes() {
        // Edge routers of a fat tree send everything outside their own
        // range up through the same aggregation port set, so aggregated
        // tables collapse to a handful of rules per switch.
        let t = fat_tree(4, 1);
        let dm = DistanceMatrix::build(&t.graph);
        let ms = MinimalScheme::new(&t.graph, &dm);
        let host = compile(&t, &ms, CompileMode::HostRoutes);
        let agg = compile(&t, &ms, CompileMode::Aggregated);
        let (hs, ags) = (host.stats(), agg.stats());
        assert_eq!(hs.raw_entries, ags.raw_entries);
        assert!(
            ags.entries_total * 2 < hs.entries_total,
            "FT aggregation must compress >2x: {} vs {}",
            ags.entries_total,
            hs.entries_total
        );
        assert!(ags.compression > 2.0);
        // Forwarding state is identical in content.
        for r in 0..t.num_routers() as u32 {
            for &d in &[0u32, 3, 7] {
                if t.endpoint_router(d) == r {
                    continue;
                }
                let a = host.lookup(r, 0, d);
                let b = agg.lookup(r, 0, d);
                assert_eq!(
                    a.map(|p| p.as_slice()),
                    b.map(|p| p.as_slice()),
                    "switch {r} ep {d}"
                );
            }
        }
    }

    #[test]
    fn fat_tree_core_routers_hold_no_destination_rules_for_themselves() {
        // Aggregation and core routers host no endpoints, so no switch
        // stores a rule whose range belongs to them; edge destinations
        // cover the whole endpoint space.
        let t = fat_tree(4, 1);
        let dm = DistanceMatrix::build(&t.graph);
        let ms = MinimalScheme::new(&t.graph, &dm);
        let fib = compile(&t, &ms, CompileMode::Aggregated);
        let core = (t.num_routers() - 1) as u32;
        assert!(t.router_endpoints(core).is_empty());
        // A core switch still forwards toward every edge destination.
        for d in 0..t.num_endpoints() as u32 {
            assert!(
                fib.lookup(core, 0, d).is_some(),
                "core switch missing rule for ep {d}"
            );
        }
    }

    #[test]
    fn ecmp_groups_dedup_across_destinations() {
        // On a fat-tree edge switch, every inter-pod destination shares
        // the same up-port ECMP group: group count stays far below rule
        // count even in host-route mode.
        let t = fat_tree(4, 1);
        let dm = DistanceMatrix::build(&t.graph);
        let ms = MinimalScheme::new(&t.graph, &dm);
        let fib = compile(&t, &ms, CompileMode::HostRoutes);
        let edge = fib.switch(0);
        assert!(
            edge.num_groups() * 2 < edge.num_entries(),
            "groups {} vs entries {}",
            edge.num_groups(),
            edge.num_entries()
        );
        // And the default commodity budget holds this tiny instance.
        assert_eq!(fib.overflowing_switches(&TableBudget::default()), 0);
    }

    #[test]
    fn compile_is_deterministic() {
        let t = slim_fly(5, 1).unwrap();
        let ls = build_random_layers(&t.graph, &LayerConfig::new(4, 0.6, 9));
        let rt = RoutingTables::build(&t.graph, &ls);
        let a = compile(&t, &rt, CompileMode::Aggregated);
        let b = rayon::run_sequential(|| compile(&t, &rt, CompileMode::Aggregated));
        assert_eq!(a.stats(), b.stats());
        for r in 0..t.num_routers() as u32 {
            for l in 0..a.tag_space() {
                assert_eq!(a.switch(r).rules(l), b.switch(r).rules(l));
            }
        }
    }
}
