//! Trace export: one telemetry-enabled reference run whose artifacts
//! feed the `fatpaths-trace` inspector and the CI trace gate.
//!
//! Runs the headline scenario (FatPaths layered routing, NDP, a
//! permutation workload) with [`fatpaths_sim::TelemetryConfig`] at full
//! span sampling and writes:
//!
//! * `results/trace.ndjson` — the full trace (meta, per-shard samples,
//!   per-link and per-layer byte counts, flow spans, repair ticks);
//! * `results/trace_timeseries.csv` — the per-interval time series.
//!
//! Both artifacts are byte-identical at any thread count for a fixed
//! shard count (the telemetry determinism contract); the parity suites
//! pin this on miniature topologies, and this experiment produces the
//! real artifact CI archives.

use crate::common::{is_smoke, write_text};
use fatpaths_net::classes::{build, SizeClass};
use fatpaths_net::fault::FaultPlan;
use fatpaths_sim::{Scenario, SchemeSpec, TelemetryConfig};
use fatpaths_workloads::arrivals::FlowSpec;
use std::io;

/// Builds the reference scenario's workload: an offset permutation.
fn permutation_flows(n: u64, offset: u64, size: u64) -> Vec<FlowSpec> {
    (0..n)
        .map(|e| FlowSpec {
            src: e as u32,
            dst: ((e + offset) % n) as u32,
            size,
            start: 0,
        })
        .filter(|fl| fl.src != fl.dst)
        .collect()
}

/// Runs the traced reference scenario and writes both trace artifacts.
pub fn trace(quick: bool) -> io::Result<()> {
    let (topo, n_layers) = if quick || is_smoke() {
        (fatpaths_net::topo::slimfly::slim_fly(5, 2).unwrap(), 4)
    } else {
        (
            build(fatpaths_net::topo::TopoKind::SlimFly, SizeClass::Small, 1),
            9,
        )
    };
    let flows = permutation_flows(topo.num_endpoints() as u64, 21, 64 * 1024);
    // A mid-run link failure with detection gives the trace a repair
    // tick, so the quiescence summary has something to anchor on.
    let e = topo.graph.edge_vec()[0];
    let (res, tr) = Scenario::on(&topo)
        .scheme(SchemeSpec::LayeredRandom { n_layers, rho: 0.6 })
        .workload(&flows)
        .seed(7)
        .fault_plan(FaultPlan::none().link_down_at(20_000_000, e.0, e.1))
        .detection_delay(10_000_000)
        .telemetry(TelemetryConfig {
            span_every: 1,
            seed: 7,
            ..TelemetryConfig::on()
        })
        .run_traced();
    let ndjson_path = write_text("trace.ndjson", &tr.to_ndjson())?;
    let csv_path = write_text("trace_timeseries.csv", &tr.to_timeseries_csv())?;
    println!(
        "trace — {} flows ({} completed), {} intervals, {} spans, {} wire bytes",
        res.flows.len(),
        res.completed().count(),
        tr.shard_rows
            .iter()
            .map(|r| r.iv)
            .max()
            .map_or(0, |m| m + 1),
        tr.spans.len(),
        tr.total_wire_bytes(),
    );
    println!("→ {}", ndjson_path.display());
    println!("→ {}", csv_path.display());
    Ok(())
}
