//! Property-based tests for the node-level fault model: when whole
//! routers die (all incident links at once, `FaultModel::RouterDown`),
//! the repaired layered tables never forward a packet *through* a dead
//! router, and every pair of live routers that the degraded graph still
//! connects remains routed.

use fatpaths_core::fwd::RoutingTables;
use fatpaths_core::layers::{build_random_layers, LayerConfig};
use fatpaths_core::repair::{DownLinks, RouteRepair};
use fatpaths_core::scheme::RoutingScheme;
use fatpaths_net::fault::{FaultModel, FaultPlan};
use fatpaths_net::graph::UNREACHABLE;
use fatpaths_net::topo::slimfly::slim_fly;
use proptest::prelude::*;

/// Simulator-faithful effective lookup: repaired row first, scheme row
/// otherwise. Returns `None` when the entry marks the pair unreachable.
fn effective_port(
    rt: &RoutingTables,
    rep: &RouteRepair,
    layer: u8,
    at: u32,
    dst: u32,
) -> Option<u16> {
    if let Some(e) = rep.lookup(layer, at, dst) {
        return e.as_slice().first().copied();
    }
    rt.candidate_ports(layer, at, dst)
        .as_slice()
        .first()
        .copied()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn repair_routes_around_dead_routers(
        n_layers in 3usize..6,
        n_dead in 1usize..4,
        seed in 0u64..100_000,
    ) {
        let (layer_seed, fault_seed) = (seed, seed ^ 0xD00D);
        let topo = slim_fly(5, 1).unwrap();
        let g = &topo.graph;
        let nr = g.n() as u32;
        let ls = build_random_layers(g, &LayerConfig::new(n_layers, 0.6, layer_seed));
        let rt = RoutingTables::build(g, &ls);
        let plan = FaultPlan::sample(&topo, &FaultModel::RouterDown { routers: n_dead }, fault_seed);
        let dead = plan.static_router_failures();
        prop_assert_eq!(dead.len(), n_dead);
        let down = DownLinks::from_failures(g, &[], dead);
        // Every incident link of every dead router is in the down set.
        for &r in dead {
            for &nb in g.neighbors(r) {
                prop_assert!(down.contains(r, nb));
            }
        }
        let rep = rt.repair(g, &down);
        let degraded = g.without_edges(down.as_slice());

        for l in 0..n_layers as u8 {
            for (s, t) in [(0u32, 41u32), (41, 0), (7, 30), (13, 49), (25, 3), (44, 18)] {
                prop_assert!(s < nr && t < nr);
                if dead.contains(&s) || dead.contains(&t) {
                    // Pairs incident to a dead router are host-dead
                    // territory (workload filtering), not a routing
                    // obligation.
                    continue;
                }
                let connected = degraded.bfs(s)[t as usize] != UNREACHABLE;
                // Walk hop by hop through the effective tables.
                let mut at = s;
                let mut hops = 0usize;
                let reached = loop {
                    if at == t {
                        break true;
                    }
                    let Some(p) = effective_port(&rt, &rep, l, at, t) else {
                        break false;
                    };
                    let next = g.neighbor_at(at, p as u32);
                    // The core property: a repaired route never crosses
                    // a link into (or out of) a dead router.
                    prop_assert!(
                        !down.contains(at, next),
                        "layer {l} {s}->{t}: crossed down link {at}-{next}"
                    );
                    prop_assert!(
                        !dead.contains(&next),
                        "layer {l} {s}->{t}: routed through dead router {next}"
                    );
                    at = next;
                    hops += 1;
                    prop_assert!(hops <= g.n(), "layer {l} {s}->{t}: loop");
                };
                // Live pairs the degraded graph connects are still
                // routed; disconnected ones are reported unreachable,
                // never silently looped.
                prop_assert_eq!(
                    reached,
                    connected,
                    "layer {} {}->{}: reached={} connected={}",
                    l, s, t, reached, connected
                );
            }
        }
    }
}
